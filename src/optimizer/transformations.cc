#include "optimizer/transformations.h"

#include <cassert>
#include <functional>
#include <numeric>

namespace sparqluo {

void CoalesceGroupBgps(BeNode* group) {
  auto& kids = group->children;
  std::vector<size_t> bgp_idx;
  for (size_t i = 0; i < kids.size(); ++i)
    if (kids[i]->is_bgp() && !kids[i]->bgp.empty()) bgp_idx.push_back(i);
  if (bgp_idx.size() < 2) return;

  // Union-find over the BGP children.
  std::vector<size_t> parent(bgp_idx.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t a = 0; a < bgp_idx.size(); ++a)
    for (size_t b = a + 1; b < bgp_idx.size(); ++b)
      if (kids[bgp_idx[a]]->bgp.CoalescableWith(kids[bgp_idx[b]]->bgp))
        parent[find(a)] = find(b);

  // Absorb each component into its leftmost member, in left-to-right order
  // so the coalesced BGP's triple order is stable.
  std::vector<bool> remove(kids.size(), false);
  for (size_t a = 0; a < bgp_idx.size(); ++a) {
    size_t root = find(a);
    size_t leader = SIZE_MAX;
    for (size_t b = 0; b < bgp_idx.size(); ++b) {
      if (find(b) == root) {
        leader = b;
        break;
      }
    }
    if (leader == a) continue;
    kids[bgp_idx[leader]]->bgp.Absorb(kids[bgp_idx[a]]->bgp);
    remove[bgp_idx[a]] = true;
  }
  // A single pass suffices: coalescability is preserved under absorption
  // (the union of two components stays one component), and components were
  // computed transitively up front.
  size_t w = 0;
  for (size_t i = 0; i < kids.size(); ++i) {
    if (!remove[i]) {
      if (w != i) kids[w] = std::move(kids[i]);
      ++w;
    }
  }
  kids.resize(w);
}

namespace {

/// True iff `branch` (a group node) has a BGP child coalescable with `bgp`.
bool HasCoalescableBgpChild(const BeNode& branch, const Bgp& bgp) {
  for (const auto& c : branch.children)
    if (c->is_bgp() && !c->bgp.empty() && c->bgp.CoalescableWith(bgp))
      return true;
  return false;
}

bool ContainsVar(const std::vector<VarId>& vars, VarId v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

/// Well-designedness guard for inserting `p1_vars` as the leftmost element
/// of `group`: every variable shared between P1 and a top-level OPTIONAL of
/// the group must already be bound by the group's certain part preceding
/// that OPTIONAL. Otherwise the insertion changes the OPTIONAL's left-join
/// base and Theorem 1/2 no longer applies (the theorems justify joining P1
/// with the group's *result*, not re-basing its left joins).
bool SafeToInsert(const BeNode& group, const std::vector<VarId>& p1_vars) {
  std::vector<VarId> certain;
  for (const auto& e : group.children) {
    if (e->is_optional()) {
      std::vector<VarId> evars;
      e->CollectVariables(&evars);
      for (VarId v : p1_vars)
        if (ContainsVar(evars, v) && !ContainsVar(certain, v)) return false;
    } else {
      // Non-OPTIONAL elements bind their variables in every result row.
      e->CollectVariables(&certain);
    }
  }
  return true;
}

/// Guard for moving P1's bindings across the OPTIONAL siblings lying
/// strictly between positions `lo` and `hi` in `group` (exclusive): a merge
/// relocates P1's join from its position into the UNION node, so any
/// intervening OPTIONAL whose right side shares an uncovered variable with
/// P1 would see a different left-join base.
bool SafeToRelocateAcross(const BeNode& group, size_t lo, size_t hi,
                          size_t p1_idx, const std::vector<VarId>& p1_vars) {
  std::vector<VarId> certain;
  for (size_t k = 0; k < hi && k < group.children.size(); ++k) {
    const BeNode& e = *group.children[k];
    if (e.is_optional()) {
      if (k > lo) {
        std::vector<VarId> evars;
        e.CollectVariables(&evars);
        for (VarId v : p1_vars)
          if (ContainsVar(evars, v) && !ContainsVar(certain, v)) return false;
      }
    } else if (k != p1_idx) {
      e.CollectVariables(&certain);
    }
  }
  return true;
}

/// Inserts a copy of `bgp` as the leftmost child of `branch` and
/// re-coalesces to maximality.
void InsertAndCoalesce(BeNode* branch, const Bgp& bgp) {
  auto node = std::make_unique<BeNode>(BeNode::Type::kBgp);
  node->bgp = bgp;
  branch->children.insert(branch->children.begin(), std::move(node));
  CoalesceGroupBgps(branch);
}

}  // namespace

bool CanMerge(const BeNode& group, size_t bgp_idx, size_t union_idx) {
  if (bgp_idx >= group.children.size() || union_idx >= group.children.size())
    return false;
  if (bgp_idx == union_idx) return false;
  const BeNode& b = *group.children[bgp_idx];
  const BeNode& u = *group.children[union_idx];
  if (!b.is_bgp() || b.bgp.empty() || !u.is_union()) return false;
  bool coalescable = false;
  for (const auto& branch : u.children)
    if (HasCoalescableBgpChild(*branch, b.bgp)) coalescable = true;
  if (!coalescable) return false;
  // Semantic safety: the insertion must not re-base any OPTIONAL.
  std::vector<VarId> p1_vars = b.bgp.Variables();
  for (const auto& branch : u.children)
    if (!SafeToInsert(*branch, p1_vars)) return false;
  size_t lo = std::min(bgp_idx, union_idx);
  size_t hi = std::max(bgp_idx, union_idx);
  return SafeToRelocateAcross(group, lo, hi, bgp_idx, p1_vars);
}

void ApplyMerge(BeNode* group, size_t bgp_idx, size_t union_idx) {
  assert(CanMerge(*group, bgp_idx, union_idx));
  Bgp bgp = group->children[bgp_idx]->bgp;
  BeNode& u = *group->children[union_idx];
  for (auto& branch : u.children) InsertAndCoalesce(branch.get(), bgp);
  group->children.erase(group->children.begin() +
                        static_cast<std::ptrdiff_t>(bgp_idx));
}

bool CanInject(const BeNode& group, size_t bgp_idx, size_t opt_idx) {
  if (bgp_idx >= group.children.size() || opt_idx >= group.children.size())
    return false;
  if (opt_idx <= bgp_idx) return false;  // OPTIONAL must be to the right
  const BeNode& b = *group.children[bgp_idx];
  const BeNode& o = *group.children[opt_idx];
  if (!b.is_bgp() || b.bgp.empty() || !o.is_optional()) return false;
  if (!HasCoalescableBgpChild(*o.children[0], b.bgp)) return false;
  return SafeToInsert(*o.children[0], b.bgp.Variables());
}

void ApplyInject(BeNode* group, size_t bgp_idx, size_t opt_idx) {
  assert(CanInject(*group, bgp_idx, opt_idx));
  const Bgp& bgp = group->children[bgp_idx]->bgp;
  InsertAndCoalesce(group->children[opt_idx]->children[0].get(), bgp);
}

}  // namespace sparqluo
