// The merge and inject BE-tree transformations (Definitions 9 and 10).
//
// Both preserve query semantics (Theorems 1 and 2):
//   merge:  P1 AND (P2 UNION P3)  ==  (P1 AND P2) UNION (P1 AND P3)
//   inject: P1 OPTIONAL P2        ==  P1 OPTIONAL (P1 AND P2)
//
// docs/transformations.md is the full specification: rules, safety
// guards, the cost model that decides applications, and worked
// before/after --explain examples.
#pragma once

#include "betree/be_tree.h"

namespace sparqluo {

/// Re-coalesces the BGP children of `group` to maximality: connected
/// components of the coalescability relation collapse into their leftmost
/// member (step 2 of Definitions 9-10).
void CoalesceGroupBgps(BeNode* group);

/// Definition 9 preconditions: children[bgp_idx] is a non-empty BGP node,
/// children[union_idx] is a UNION node, and at least one UNION branch has a
/// BGP child coalescable with it.
bool CanMerge(const BeNode& group, size_t bgp_idx, size_t union_idx);

/// Performs merge in place: inserts a copy of the BGP as the leftmost child
/// of every UNION branch, re-coalesces each branch, and removes the BGP
/// from its original position. Requires CanMerge.
void ApplyMerge(BeNode* group, size_t bgp_idx, size_t union_idx);

/// Definition 10 preconditions: children[bgp_idx] is a non-empty BGP node,
/// children[opt_idx] is an OPTIONAL node to its right, and the
/// OPTIONAL-right group has a BGP child coalescable with it.
bool CanInject(const BeNode& group, size_t bgp_idx, size_t opt_idx);

/// Performs inject in place: inserts a copy of the BGP as the leftmost
/// child of the OPTIONAL-right group and re-coalesces it. The original BGP
/// node keeps its position. Requires CanInject.
void ApplyInject(BeNode* group, size_t bgp_idx, size_t opt_idx);

}  // namespace sparqluo
