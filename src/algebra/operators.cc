#include "algebra/operators.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <unordered_map>

namespace sparqluo {

namespace internal {

bool RowsCompatible(const TermId* ra, const TermId* rb,
                    const std::vector<std::pair<size_t, size_t>>& cols) {
  for (const auto& [ca, cb] : cols) {
    TermId va = ra[ca];
    TermId vb = rb[cb];
    if (va != kUnboundTerm && vb != kUnboundTerm && va != vb) return false;
  }
  return true;
}

}  // namespace internal

namespace {

struct VecHash {
  size_t operator()(const std::vector<TermId>& v) const {
    size_t h = 1469598103934665603ULL;
    for (TermId x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Shared machinery for Join / LeftOuterJoin / Minus: finds, for each row of
/// `a`, the compatible rows of `b`. Single shared variables — the dominant
/// case — use a scalar-keyed hash to avoid per-row vector allocations.
/// An explicit [b_begin, b_end) restricts the indexed b-rows, which is how
/// ParallelJoin shards one hash build across workers; reported row indices
/// are absolute either way.
class CompatFinder {
 public:
  CompatFinder(const BindingSet& a, const BindingSet& b, size_t b_begin = 0,
               size_t b_end = SIZE_MAX)
      : a_(a), b_(b), b_begin_(b_begin), b_end_(std::min(b_end, b.size())) {
    for (size_t i = 0; i < a.schema().size(); ++i) {
      size_t j = b.ColumnOf(a.schema()[i]);
      if (j != SIZE_MAX) common_.emplace_back(i, j);
    }
    if (common_.empty() || b.width() == 0) return;
    // Hash-partition b's rows on their common-variable values. Rows with an
    // unbound common variable can match several keys, so they go to a
    // separate compatibility-checked list.
    if (common_.size() == 1) {
      size_t cb = common_[0].second;
      scalar_buckets_.reserve(b_end_ - b_begin_);
      for (size_t r = b_begin_; r < b_end_; ++r) {
        TermId key = b.Row(r)[cb];
        if (key != kUnboundTerm) {
          scalar_buckets_[key].push_back(r);
        } else {
          partial_.push_back(r);
        }
      }
      return;
    }
    std::vector<TermId> key(common_.size());
    for (size_t r = b_begin_; r < b_end_; ++r) {
      const TermId* row = b.Row(r);
      bool full = true;
      for (size_t k = 0; k < common_.size(); ++k) {
        key[k] = row[common_[k].second];
        if (key[k] == kUnboundTerm) full = false;
      }
      if (full) {
        buckets_[key].push_back(r);
      } else {
        partial_.push_back(r);
      }
    }
  }

  bool has_common() const { return !common_.empty(); }
  const std::vector<std::pair<size_t, size_t>>& common() const {
    return common_;
  }

  /// True iff some indexed b-row has an unbound common-variable cell. Those
  /// rows are emitted after the bucket matches, so sharded builds (which
  /// would interleave that order) must be avoided when any exist.
  bool has_partial_rows() const { return !partial_.empty(); }

  /// Calls `fn(rb)` for every b-row compatible with a-row `ra_idx`.
  template <typename Fn>
  void ForEachCompatible(size_t ra_idx, Fn&& fn) const {
    if (common_.empty()) {
      for (size_t r = b_begin_; r < b_end_; ++r) fn(r);
      return;
    }
    const TermId* ra = a_.Row(ra_idx);
    if (common_.size() == 1) {
      TermId key = ra[common_[0].first];
      if (key != kUnboundTerm) {
        auto it = scalar_buckets_.find(key);
        if (it != scalar_buckets_.end())
          for (size_t r : it->second) fn(r);
        for (size_t r : partial_) fn(r);  // unbound b-side: compatible
      } else {
        for (size_t r = b_begin_; r < b_end_; ++r) fn(r);
      }
      return;
    }
    bool full = true;
    std::vector<TermId> key(common_.size());
    for (size_t k = 0; k < common_.size(); ++k) {
      key[k] = ra[common_[k].first];
      if (key[k] == kUnboundTerm) full = false;
    }
    if (full) {
      auto it = buckets_.find(key);
      if (it != buckets_.end())
        for (size_t r : it->second) fn(r);
      for (size_t r : partial_) {
        if (internal::RowsCompatible(ra, b_.Row(r), common_)) fn(r);
      }
    } else {
      // Some common variable unbound on the a side: scan everything.
      for (size_t r = b_begin_; r < b_end_; ++r) {
        if (internal::RowsCompatible(ra, b_.Row(r), common_)) fn(r);
      }
    }
  }

 private:
  const BindingSet& a_;
  const BindingSet& b_;
  size_t b_begin_;
  size_t b_end_;
  std::vector<std::pair<size_t, size_t>> common_;
  std::unordered_map<std::vector<TermId>, std::vector<size_t>, VecHash>
      buckets_;
  std::unordered_map<TermId, std::vector<size_t>> scalar_buckets_;
  std::vector<size_t> partial_;
};

/// Output schema of a join: a's schema followed by b's extra variables.
std::vector<VarId> MergedSchema(const BindingSet& a, const BindingSet& b) {
  std::vector<VarId> schema = a.schema();
  for (VarId v : b.schema())
    if (a.ColumnOf(v) == SIZE_MAX) schema.push_back(v);
  return schema;
}

/// Builds the merged row µ1 ∪ µ2 into `out`.
void MergeRows(const BindingSet& a, size_t ra, const BindingSet& b, size_t rb,
               const std::vector<std::pair<size_t, size_t>>& common,
               const std::vector<size_t>& b_extra_cols,
               std::vector<TermId>* out) {
  size_t aw = a.width();
  for (size_t c = 0; c < aw; ++c) (*out)[c] = a.At(ra, c);
  // A shared variable unbound on the a side takes b's value.
  for (const auto& [ca, cb] : common) {
    if ((*out)[ca] == kUnboundTerm) (*out)[ca] = b.At(rb, cb);
  }
  for (size_t i = 0; i < b_extra_cols.size(); ++i)
    (*out)[aw + i] = b.At(rb, b_extra_cols[i]);
}

std::vector<size_t> ExtraCols(const BindingSet& a, const BindingSet& b) {
  std::vector<size_t> cols;
  for (size_t j = 0; j < b.schema().size(); ++j)
    if (a.ColumnOf(b.schema()[j]) == SIZE_MAX) cols.push_back(j);
  return cols;
}

}  // namespace

BindingSet Join(const BindingSet& a, const BindingSet& b,
                const CancelToken* cancel) {
  CancelCheckpoint chk(cancel);
  std::vector<VarId> schema = MergedSchema(a, b);
  BindingSet out(std::move(schema));
  if (a.empty() || b.empty()) return out;
  if (out.width() == 0) {
    // Join of zero-width bags: |a| * |b| empty mappings.
    out.AppendEmptyMappings(a.size() * b.size());
    return out;
  }
  std::vector<size_t> extra = ExtraCols(a, b);
  std::vector<TermId> row(out.width());
  // Degenerate widths: a zero-width side contributes only multiplicity.
  if (a.width() == 0) {
    for (size_t ra = 0; ra < a.size(); ++ra)
      for (size_t rb = 0; rb < b.size(); ++rb) {
        chk.Poll();
        for (size_t i = 0; i < extra.size(); ++i) row[i] = b.At(rb, extra[i]);
        out.AppendRow(row);
      }
    return out;
  }
  if (b.width() == 0) {
    for (size_t ra = 0; ra < a.size(); ++ra)
      for (size_t rb = 0; rb < b.size(); ++rb) {
        chk.Poll();
        for (size_t c = 0; c < a.width(); ++c) row[c] = a.At(ra, c);
        out.AppendRow(row);
      }
    return out;
  }
  // Hash the smaller side, probe with the larger: the build cost dominates
  // (vector-keyed buckets), and either orientation yields the same bag.
  std::vector<std::pair<size_t, size_t>> common_ab;
  for (size_t i = 0; i < a.schema().size(); ++i) {
    size_t j = b.ColumnOf(a.schema()[i]);
    if (j != SIZE_MAX) common_ab.emplace_back(i, j);
  }
  if (a.size() <= b.size()) {
    // Build on a: iterate b, look up compatible a-rows.
    CompatFinder finder(b, a);
    for (size_t rb = 0; rb < b.size(); ++rb) {
      chk.Poll();
      finder.ForEachCompatible(rb, [&](size_t ra) {
        chk.Poll();
        MergeRows(a, ra, b, rb, common_ab, extra, &row);
        out.AppendRow(row);
      });
    }
  } else {
    CompatFinder finder(a, b);
    for (size_t ra = 0; ra < a.size(); ++ra) {
      chk.Poll();
      finder.ForEachCompatible(ra, [&](size_t rb) {
        chk.Poll();
        MergeRows(a, ra, b, rb, common_ab, extra, &row);
        out.AppendRow(row);
      });
    }
  }
  return out;
}

BindingSet ParallelJoin(const BindingSet& a, const BindingSet& b,
                        const CancelToken* cancel, const ParallelSpec& spec,
                        uint64_t* morsels) {
  // Degenerate shapes (empty inputs, zero-width sides) take cheap special
  // paths inside Join; only the hash-probe loop is worth fanning out.
  if (!spec.enabled() || a.empty() || b.empty() || a.width() == 0 ||
      b.width() == 0 || a.size() + b.size() <= spec.morsel_size)
    return Join(a, b, cancel);

  // Same orientation rule as Join — build on the smaller side, stream the
  // larger — so the output row order matches the sequential join exactly.
  const bool stream_is_b = a.size() <= b.size();
  const BindingSet& stream = stream_is_b ? b : a;
  const BindingSet& build = stream_is_b ? a : b;

  std::vector<VarId> schema = MergedSchema(a, b);
  std::vector<std::pair<size_t, size_t>> common_ab;
  for (size_t i = 0; i < a.schema().size(); ++i) {
    size_t j = b.ColumnOf(a.schema()[i]);
    if (j != SIZE_MAX) common_ab.emplace_back(i, j);
  }
  std::vector<size_t> extra = ExtraCols(a, b);

  // Parallel hash build: shard the build side into contiguous row slices,
  // each indexed by its own CompatFinder. A probe walks the shards in slice
  // order, so matches surface in ascending build-row order — exactly the
  // single-finder bucket order — as long as no build row carries an unbound
  // join-key cell (those are emitted after bucket matches, which sharding
  // would interleave). Detect that case and collapse to one shard.
  bool build_has_unbound = false;
  for (size_t r = 0; r < build.size() && !build_has_unbound; ++r)
    for (const auto& [ca, cb] : common_ab) {
      if (build.At(r, stream_is_b ? ca : cb) == kUnboundTerm) {
        build_has_unbound = true;
        break;
      }
    }
  size_t num_shards =
      build_has_unbound
          ? 1
          : std::max<size_t>(1, std::min(spec.EffectiveWorkers(),
                                         spec.MorselCount(build.size())));
  size_t shard_rows = (build.size() + num_shards - 1) / num_shards;
  std::vector<std::optional<CompatFinder>> shards(num_shards);
  spec.pool->ParallelFor(num_shards, spec.EffectiveWorkers(), [&](size_t i) {
    size_t begin = i * shard_rows;
    size_t end = std::min(begin + shard_rows, build.size());
    shards[i].emplace(stream, build, begin, end);
  });

  // Morsel-parallel probe of the streamed side. Each morsel emits into its
  // own BindingSet; concatenating them in morsel order reproduces the
  // sequential probe order.
  size_t num_morsels = spec.MorselCount(stream.size());
  size_t morsel_rows = (stream.size() + num_morsels - 1) / num_morsels;
  std::vector<BindingSet> outs(num_morsels, BindingSet(schema));
  spec.pool->ParallelFor(num_morsels, spec.EffectiveWorkers(), [&](size_t m) {
    CancelCheckpoint chk(cancel);
    BindingSet& out = outs[m];
    std::vector<TermId> row(schema.size());
    size_t begin = m * morsel_rows;
    size_t end = std::min(begin + morsel_rows, stream.size());
    for (size_t si = begin; si < end; ++si) {
      chk.Poll();
      for (const auto& shard : shards) {
        shard->ForEachCompatible(si, [&](size_t bi) {
          chk.Poll();
          size_t ra = stream_is_b ? bi : si;
          size_t rb = stream_is_b ? si : bi;
          MergeRows(a, ra, b, rb, common_ab, extra, &row);
          out.AppendRow(row);
        });
      }
    }
  });
  if (morsels != nullptr)
    *morsels += num_morsels + (num_shards > 1 ? num_shards : 0);

  BindingSet result(std::move(schema));
  size_t total = 0;
  for (const BindingSet& out : outs) total += out.size();
  result.Reserve(total);
  for (const BindingSet& out : outs) result.Append(out);
  return result;
}

BindingSet UnionBag(const BindingSet& a, const BindingSet& b) {
  std::vector<VarId> schema = MergedSchema(a, b);
  BindingSet out(std::move(schema));
  if (out.width() == 0) {
    out.AppendEmptyMappings(a.size() + b.size());
    return out;
  }
  out.Reserve(a.size() + b.size());
  std::vector<TermId> row(out.width(), kUnboundTerm);
  std::vector<size_t> a_cols(out.width(), SIZE_MAX), b_cols(out.width(), SIZE_MAX);
  for (size_t c = 0; c < out.width(); ++c) {
    a_cols[c] = a.ColumnOf(out.schema()[c]);
    b_cols[c] = b.ColumnOf(out.schema()[c]);
  }
  for (size_t r = 0; r < a.size(); ++r) {
    for (size_t c = 0; c < out.width(); ++c)
      row[c] = a_cols[c] == SIZE_MAX ? kUnboundTerm : a.At(r, a_cols[c]);
    out.AppendRow(row);
  }
  for (size_t r = 0; r < b.size(); ++r) {
    for (size_t c = 0; c < out.width(); ++c)
      row[c] = b_cols[c] == SIZE_MAX ? kUnboundTerm : b.At(r, b_cols[c]);
    out.AppendRow(row);
  }
  return out;
}

BindingSet Minus(const BindingSet& a, const BindingSet& b) {
  BindingSet out(a.schema());
  if (a.empty()) return out;
  if (b.empty()) return a;
  std::vector<TermId> row(a.width());
  if (a.size() <= b.size()) {
    // Build on a: mark a-rows that have a compatible b-row.
    CompatFinder finder(b, a);
    if (a.width() == 0 || b.width() == 0 || !finder.has_common()) return out;
    std::vector<bool> matched(a.size(), false);
    for (size_t rb = 0; rb < b.size(); ++rb)
      finder.ForEachCompatible(rb, [&](size_t ra) { matched[ra] = true; });
    for (size_t ra = 0; ra < a.size(); ++ra) {
      if (!matched[ra]) {
        row.assign(a.Row(ra), a.Row(ra) + a.width());
        out.AppendRow(row);
      }
    }
    return out;
  }
  CompatFinder finder(a, b);
  if (a.width() == 0 || b.width() == 0 || !finder.has_common()) {
    // Every µ2 is compatible with every µ1 (no shared bound variables can
    // disagree), so the difference is empty when b is non-empty.
    return out;
  }
  for (size_t ra = 0; ra < a.size(); ++ra) {
    bool any = false;
    finder.ForEachCompatible(ra, [&](size_t) { any = true; });
    if (!any) {
      row.assign(a.Row(ra), a.Row(ra) + a.width());
      out.AppendRow(row);
    }
  }
  return out;
}

BindingSet LeftOuterJoin(const BindingSet& a, const BindingSet& b,
                         const CancelToken* cancel) {
  CancelCheckpoint chk(cancel);
  std::vector<VarId> schema = MergedSchema(a, b);
  BindingSet out(std::move(schema));
  if (a.empty()) return out;
  if (out.width() == 0) {
    // Zero-width: each µ1 joins all µ2 if any exist, else survives alone.
    out.AppendEmptyMappings(b.empty() ? a.size() : a.size() * b.size());
    return out;
  }
  std::vector<size_t> extra = ExtraCols(a, b);
  std::vector<TermId> row(out.width());
  auto pad_a_row = [&](size_t ra) {
    for (size_t c = 0; c < out.width(); ++c)
      row[c] = c < a.width() ? a.At(ra, c) : kUnboundTerm;
    out.AppendRow(row);
  };
  if (b.empty()) {
    for (size_t ra = 0; ra < a.size(); ++ra) pad_a_row(ra);
    return out;
  }
  if (b.width() == 0) {
    // b holds empty mappings: every one is compatible; merge is µ1 itself.
    for (size_t ra = 0; ra < a.size(); ++ra)
      for (size_t k = 0; k < b.size(); ++k) {
        chk.Poll();
        pad_a_row(ra);
      }
    return out;
  }
  std::vector<std::pair<size_t, size_t>> common_ab;
  for (size_t i = 0; i < a.schema().size(); ++i) {
    size_t j = b.ColumnOf(a.schema()[i]);
    if (j != SIZE_MAX) common_ab.emplace_back(i, j);
  }
  if (a.size() <= b.size()) {
    // Build on a, probe with b; track which a-rows matched for padding.
    CompatFinder finder(b, a);
    std::vector<bool> matched(a.size(), false);
    for (size_t rb = 0; rb < b.size(); ++rb) {
      chk.Poll();
      finder.ForEachCompatible(rb, [&](size_t ra) {
        chk.Poll();
        matched[ra] = true;
        MergeRows(a, ra, b, rb, common_ab, extra, &row);
        out.AppendRow(row);
      });
    }
    for (size_t ra = 0; ra < a.size(); ++ra)
      if (!matched[ra]) pad_a_row(ra);
    return out;
  }
  CompatFinder finder(a, b);
  for (size_t ra = 0; ra < a.size(); ++ra) {
    chk.Poll();
    size_t matches = 0;
    finder.ForEachCompatible(ra, [&](size_t rb) {
      chk.Poll();
      ++matches;
      MergeRows(a, ra, b, rb, common_ab, extra, &row);
      out.AppendRow(row);
    });
    if (matches == 0) pad_a_row(ra);
  }
  return out;
}

namespace {

/// Three-valued FILTER evaluation outcome.
enum class Ternary { kTrue, kFalse, kError };

Ternary Not(Ternary t) {
  if (t == Ternary::kError) return t;
  return t == Ternary::kTrue ? Ternary::kFalse : Ternary::kTrue;
}

/// Resolves a slot to a term id under mapping `row`; kUnboundTerm on error.
TermId ResolveSlot(const PatternSlot& slot, const BindingSet& bs, size_t row,
                   const Dictionary& dict) {
  if (slot.is_var) return bs.Value(row, slot.var);
  return dict.Lookup(slot.term);
}


Ternary EvalFilter(const FilterExpr& f, const BindingSet& bs, size_t row,
                   const Dictionary& dict) {
  using Op = FilterExpr::Op;
  switch (f.op) {
    case Op::kAnd: {
      Ternary l = EvalFilter(f.children[0], bs, row, dict);
      Ternary r = EvalFilter(f.children[1], bs, row, dict);
      if (l == Ternary::kFalse || r == Ternary::kFalse) return Ternary::kFalse;
      if (l == Ternary::kError || r == Ternary::kError) return Ternary::kError;
      return Ternary::kTrue;
    }
    case Op::kOr: {
      Ternary l = EvalFilter(f.children[0], bs, row, dict);
      Ternary r = EvalFilter(f.children[1], bs, row, dict);
      if (l == Ternary::kTrue || r == Ternary::kTrue) return Ternary::kTrue;
      if (l == Ternary::kError || r == Ternary::kError) return Ternary::kError;
      return Ternary::kFalse;
    }
    case Op::kNot:
      return Not(EvalFilter(f.children[0], bs, row, dict));
    case Op::kBound: {
      if (!f.lhs.is_var) return Ternary::kError;
      return bs.Value(row, f.lhs.var) != kUnboundTerm ? Ternary::kTrue
                                                      : Ternary::kFalse;
    }
    default: {
      TermId lv = ResolveSlot(f.lhs, bs, row, dict);
      TermId rv = ResolveSlot(f.rhs, bs, row, dict);
      // A constant absent from the dictionary can still be compared for
      // (in)equality against a bound variable — it is simply never equal.
      bool l_unbound = f.lhs.is_var && lv == kUnboundTerm;
      bool r_unbound = f.rhs.is_var && rv == kUnboundTerm;
      if (l_unbound || r_unbound) return Ternary::kError;
      if (f.op == Op::kEq || f.op == Op::kNeq) {
        bool eq;
        if (lv != kUnboundTerm && rv != kUnboundTerm) {
          eq = lv == rv;
        } else {
          // One side is a dictionary-missing constant: compare terms.
          Term lt = f.lhs.is_var ? dict.Decode(lv) : f.lhs.term;
          Term rt = f.rhs.is_var ? dict.Decode(rv) : f.rhs.term;
          eq = lt == rt;
        }
        return (eq == (f.op == Op::kEq)) ? Ternary::kTrue : Ternary::kFalse;
      }
      Term lt = f.lhs.is_var || lv != kUnboundTerm ? dict.Decode(lv) : f.lhs.term;
      Term rt = f.rhs.is_var || rv != kUnboundTerm ? dict.Decode(rv) : f.rhs.term;
      int c = CompareTermsForOrdering(lt, rt);
      bool result = false;
      switch (f.op) {
        case Op::kLt: result = c < 0; break;
        case Op::kGt: result = c > 0; break;
        case Op::kLe: result = c <= 0; break;
        case Op::kGe: result = c >= 0; break;
        default: return Ternary::kError;
      }
      return result ? Ternary::kTrue : Ternary::kFalse;
    }
  }
}

}  // namespace

BindingSet ApplyFilter(const BindingSet& a, const FilterExpr& filter,
                       const Dictionary& dict) {
  BindingSet out(a.schema());
  std::vector<TermId> row(a.width());
  for (size_t r = 0; r < a.size(); ++r) {
    if (EvalFilter(filter, a, r, dict) == Ternary::kTrue) {
      if (a.width() == 0) {
        out.AppendEmptyMappings(1);
      } else {
        row.assign(a.Row(r), a.Row(r) + a.width());
        out.AppendRow(row);
      }
    }
  }
  return out;
}

}  // namespace sparqluo
