// Bag-semantics operators over BindingSets (Section 3, Definition 7).
//
// All operators preserve duplicates. Compatibility (µ1 ~ µ2) is
// domain-aware: variables absent from dom(µ) — unbound cells — are
// compatible with anything, which is what makes OPTIONAL-produced partial
// mappings join correctly.
#pragma once

#include "algebra/binding_set.h"
#include "sparql/ast.h"
#include "util/cancellation.h"
#include "util/executor_pool.h"

namespace sparqluo {

/// Ω1 ⋈ Ω2 = { µ1 ∪ µ2 | µ1 ∈ Ω1, µ2 ∈ Ω2, µ1 ~ µ2 }.
///
/// `cancel` (nullable) is polled per emitted row: join output can be
/// |Ω1|·|Ω2|, so without a checkpoint here a join-dominated query could
/// overshoot its deadline without bound.
BindingSet Join(const BindingSet& a, const BindingSet& b,
                const CancelToken* cancel = nullptr);

/// Join with output bit-identical to Join (same schema, same row order),
/// computed morsel-parallel on `spec.pool`: the hash build over the smaller
/// side is sharded across workers and the larger side is probed in
/// independent morsels whose outputs concatenate in morsel order. Falls
/// back to Join for degenerate shapes or a disabled spec. `morsels`
/// (nullable) accumulates the number of parallel tasks issued.
BindingSet ParallelJoin(const BindingSet& a, const BindingSet& b,
                        const CancelToken* cancel, const ParallelSpec& spec,
                        uint64_t* morsels = nullptr);

/// Ω1 ∪_bag Ω2 over the union schema (missing columns padded unbound).
BindingSet UnionBag(const BindingSet& a, const BindingSet& b);

/// Ω1 ▷ Ω2 = { µ1 ∈ Ω1 | ∀µ2 ∈ Ω2 : µ1 ≁ µ2 }.
BindingSet Minus(const BindingSet& a, const BindingSet& b);

/// Left outer join: (Ω1 ⋈ Ω2) ∪_bag (Ω1 ▷ Ω2). Single-pass implementation.
/// `cancel` as in Join.
BindingSet LeftOuterJoin(const BindingSet& a, const BindingSet& b,
                         const CancelToken* cancel = nullptr);

/// Keeps the mappings for which `filter` evaluates to true. Mappings on
/// which the expression errors (e.g. comparison over an unbound variable)
/// are dropped, per SPARQL error semantics.
BindingSet ApplyFilter(const BindingSet& a, const FilterExpr& filter,
                       const Dictionary& dict);

namespace internal {
/// True iff the two rows agree on every shared variable that is bound in
/// both. `cols` lists (column in a, column in b) pairs of shared variables.
bool RowsCompatible(const TermId* ra, const TermId* rb,
                    const std::vector<std::pair<size_t, size_t>>& cols);
}  // namespace internal

}  // namespace sparqluo
