// Bag-of-mappings representation (Section 3, SPARQL semantics).
//
// A BindingSet is a bag of mappings µ sharing one variable schema. Columns
// are variables; cells hold TermIds or kUnboundTerm. A variable v is in
// dom(µ) iff its cell is bound — so one BindingSet can hold mappings with
// different domains, as produced by UNION and OPTIONAL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "sparql/ast.h"

namespace sparqluo {

/// Cell marker for "variable not in dom(µ)".
inline constexpr TermId kUnboundTerm = kInvalidTermId;

/// A bag (multiset) of mappings over a fixed variable schema.
class BindingSet {
 public:
  BindingSet() = default;
  explicit BindingSet(std::vector<VarId> schema) : schema_(std::move(schema)) {}

  const std::vector<VarId>& schema() const { return schema_; }
  size_t width() const { return schema_.size(); }
  size_t size() const { return width() == 0 ? scalar_count_ : cells_.size() / width(); }
  bool empty() const { return size() == 0; }

  /// Column index of `v` in the schema, or SIZE_MAX when absent.
  size_t ColumnOf(VarId v) const;

  /// Appends one mapping; `row` must have width() entries.
  void AppendRow(const std::vector<TermId>& row);

  /// Appends every mapping of `other`, which must share this schema exactly
  /// (same variables, same order). This is the deterministic merge step of
  /// morsel-driven evaluation: per-morsel results concatenated in morsel
  /// order reproduce the sequential row order bit for bit.
  void Append(const BindingSet& other);

  /// Appends `count` copies of the empty mapping (only for width() == 0,
  /// e.g. the result of a BGP with no variables that matched).
  void AppendEmptyMappings(size_t count) { scalar_count_ += count; }

  /// Cell accessor.
  TermId At(size_t row, size_t col) const { return cells_[row * width() + col]; }
  void Set(size_t row, size_t col, TermId v) { cells_[row * width() + col] = v; }

  /// Raw row view (width() cells).
  const TermId* Row(size_t row) const { return &cells_[row * width()]; }

  /// Value of variable `v` in mapping `row`; kUnboundTerm if v is not in
  /// the schema or not in dom(µ_row).
  TermId Value(size_t row, VarId v) const {
    size_t c = ColumnOf(v);
    return c == SIZE_MAX ? kUnboundTerm : At(row, c);
  }

  void Reserve(size_t rows) { cells_.reserve(rows * width()); }

  /// A BindingSet holding exactly one empty mapping µ0 (the identity of
  /// join): used as the initial `r` of Algorithm 1.
  static BindingSet Unit() {
    BindingSet b;
    b.scalar_count_ = 1;
    return b;
  }

  /// Projects onto `vars` (keeping bag semantics; duplicates retained).
  BindingSet Project(const std::vector<VarId>& vars) const;

  /// Removes duplicate mappings (DISTINCT).
  BindingSet Distinct() const;

  /// Canonical multiset fingerprint for equality testing: rows rendered over
  /// the union schema, sorted. Two BindingSets are bag-equal iff their
  /// fingerprints (over the same variable order) are equal.
  std::vector<std::vector<TermId>> SortedRows(
      const std::vector<VarId>& var_order) const;

  /// Debug / display rendering.
  std::string ToString(const VarTable& vars, const Dictionary& dict,
                       size_t max_rows = 20) const;

 private:
  std::vector<VarId> schema_;
  std::vector<TermId> cells_;
  size_t scalar_count_ = 0;  ///< Row count when width() == 0.
};

/// True iff the two bags are equal as multisets of mappings (domain-aware:
/// unbound cells compare equal to "absent").
bool BagEquals(const BindingSet& a, const BindingSet& b);

}  // namespace sparqluo
