#include "algebra/binding_set.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace sparqluo {

size_t BindingSet::ColumnOf(VarId v) const {
  for (size_t i = 0; i < schema_.size(); ++i)
    if (schema_[i] == v) return i;
  return SIZE_MAX;
}

void BindingSet::AppendRow(const std::vector<TermId>& row) {
  assert(row.size() == width());
  if (width() == 0) {
    ++scalar_count_;
    return;
  }
  cells_.insert(cells_.end(), row.begin(), row.end());
}

void BindingSet::Append(const BindingSet& other) {
  assert(schema_ == other.schema_ && "Append requires identical schemas");
  if (width() == 0) {
    scalar_count_ += other.scalar_count_;
    return;
  }
  cells_.insert(cells_.end(), other.cells_.begin(), other.cells_.end());
}

BindingSet BindingSet::Project(const std::vector<VarId>& vars) const {
  BindingSet out(vars);
  std::vector<size_t> cols;
  cols.reserve(vars.size());
  for (VarId v : vars) cols.push_back(ColumnOf(v));
  std::vector<TermId> row(vars.size());
  for (size_t r = 0; r < size(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i)
      row[i] = cols[i] == SIZE_MAX ? kUnboundTerm : At(r, cols[i]);
    out.AppendRow(row);
  }
  return out;
}

BindingSet BindingSet::Distinct() const {
  BindingSet out(schema_);
  if (width() == 0) {
    out.scalar_count_ = std::min<size_t>(scalar_count_, 1);
    return out;
  }
  std::set<std::vector<TermId>> seen;
  std::vector<TermId> row(width());
  for (size_t r = 0; r < size(); ++r) {
    row.assign(Row(r), Row(r) + width());
    if (seen.insert(row).second) out.AppendRow(row);
  }
  return out;
}

std::vector<std::vector<TermId>> BindingSet::SortedRows(
    const std::vector<VarId>& var_order) const {
  std::vector<std::vector<TermId>> rows;
  rows.reserve(size());
  std::vector<size_t> cols;
  cols.reserve(var_order.size());
  for (VarId v : var_order) cols.push_back(ColumnOf(v));
  for (size_t r = 0; r < size(); ++r) {
    std::vector<TermId> row(var_order.size());
    for (size_t i = 0; i < cols.size(); ++i)
      row[i] = cols[i] == SIZE_MAX ? kUnboundTerm : At(r, cols[i]);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string BindingSet::ToString(const VarTable& vars, const Dictionary& dict,
                                 size_t max_rows) const {
  std::ostringstream out;
  for (size_t i = 0; i < schema_.size(); ++i)
    out << (i ? "\t" : "") << "?" << vars.Name(schema_[i]);
  out << "\n";
  size_t n = std::min(size(), max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < width(); ++c)
      out << (c ? "\t" : "") << dict.ToString(At(r, c));
    out << "\n";
  }
  if (size() > n) out << "... (" << size() << " rows total)\n";
  return out.str();
}

bool BagEquals(const BindingSet& a, const BindingSet& b) {
  // Compare over the union of both schemas so that a column that is entirely
  // absent on one side must be entirely unbound on the other.
  std::vector<VarId> order = a.schema();
  for (VarId v : b.schema())
    if (std::find(order.begin(), order.end(), v) == order.end())
      order.push_back(v);
  return a.SortedRows(order) == b.SortedRows(order);
}

}  // namespace sparqluo
