// LBR baseline engine [Atre, "Left Bit Right", SIGMOD'15] re-implemented in
// C++ from the paper's description, as the authors of the reproduced paper
// did for their comparison (Section 7.2).
//
// Execution strategy:
//   1. Build the GoSN over the query's OPTIONAL structure.
//   2. Materialize every triple pattern's bindings independently.
//   3. Two-pass semijoin pruning over the graph of join variables:
//      a top-down/forward pass where masters and earlier patterns reduce
//      later ones, and a bottom-up/backward pass where inner-join peers
//      reduce each other (slaves never reduce masters, preserving
//      left-outer-join semantics).
//   4. Combine per-supernode tables with inner joins in query order, then
//      attach slave supernodes with left-outer joins. Nullification /
//      best-match inconsistencies cannot arise because combination uses
//      mapping-level compatible joins (the well-designed queries of the
//      benchmark coincide with sequential SPARQL semantics).
//
// The deliberate differences from our BE-tree engine — full per-pattern
// materialization, the extra semijoin scan passes, and query-order joins —
// are precisely the overheads the reproduced paper attributes to LBR.
#pragma once

#include "algebra/binding_set.h"
#include "baseline/lbr/gosn.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace sparqluo {

struct LbrMetrics {
  double exec_ms = 0.0;
  uint64_t semijoin_passes = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_pruned = 0;
};

class LbrEngine {
 public:
  LbrEngine(const TripleStore& store, const Dictionary& dict)
      : store_(store), dict_(dict) {}

  /// Executes a SPARQL query with OPTIONAL (no UNION/FILTER).
  Result<BindingSet> Execute(const Query& query,
                             LbrMetrics* metrics = nullptr) const;

 private:
  const TripleStore& store_;
  const Dictionary& dict_;
};

}  // namespace sparqluo
