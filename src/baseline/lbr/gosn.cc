#include "baseline/lbr/gosn.h"

#include <algorithm>

namespace sparqluo {

std::vector<VarId> GosnNode::Variables() const {
  std::vector<VarId> out;
  for (const TriplePattern& t : patterns)
    for (VarId v : t.Variables())
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  return out;
}

Result<std::unique_ptr<GosnNode>> BuildGoSN(const GroupGraphPattern& group) {
  auto node = std::make_unique<GosnNode>();
  for (const PatternElement& e : group.elements) {
    switch (e.kind) {
      case PatternElement::Kind::kTriple:
        node->patterns.push_back(e.triple);
        break;
      case PatternElement::Kind::kGroup: {
        auto child = BuildGoSN(e.groups[0]);
        if (!child.ok()) return child.status();
        node->and_children.push_back(std::move(*child));
        break;
      }
      case PatternElement::Kind::kOptional: {
        auto child = BuildGoSN(e.groups[0]);
        if (!child.ok()) return child.status();
        node->opt_children.push_back(std::move(*child));
        break;
      }
      case PatternElement::Kind::kUnion:
        return Status::Unsupported("LBR does not handle UNION");
      case PatternElement::Kind::kFilter:
        return Status::Unsupported("LBR baseline does not handle FILTER");
      case PatternElement::Kind::kPath:
        return Status::Unsupported(
            "LBR baseline does not handle property paths");
    }
  }
  return node;
}

}  // namespace sparqluo
