#include "baseline/lbr/lbr_engine.h"

#include <unordered_set>

#include "algebra/operators.h"
#include "bgp/cardinality.h"

namespace sparqluo {

namespace {

/// One materialized triple pattern with its owning supernode.
struct PatternTable {
  const GosnNode* node = nullptr;
  BindingSet rows;
};

struct VecHash {
  size_t operator()(const std::vector<TermId>& v) const {
    size_t h = 1469598103934665603ULL;
    for (TermId x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Semijoin-reduces `target` by `reducer` on their shared variables:
/// keeps target rows whose shared-variable values occur in reducer.
/// Returns the number of rows pruned; no-op when no variables are shared.
uint64_t SemijoinReduce(BindingSet* target, const BindingSet& reducer,
                        LbrMetrics* metrics) {
  std::vector<std::pair<size_t, size_t>> shared;
  for (size_t i = 0; i < target->schema().size(); ++i) {
    size_t j = reducer.ColumnOf(target->schema()[i]);
    if (j != SIZE_MAX) shared.emplace_back(i, j);
  }
  if (shared.empty() || target->empty()) return 0;

  std::unordered_set<std::vector<TermId>, VecHash> keys;
  std::vector<TermId> key(shared.size());
  for (size_t r = 0; r < reducer.size(); ++r) {
    for (size_t k = 0; k < shared.size(); ++k)
      key[k] = reducer.At(r, shared[k].second);
    keys.insert(key);
  }
  if (metrics) metrics->rows_scanned += reducer.size() + target->size();

  BindingSet kept(target->schema());
  std::vector<TermId> row(target->width());
  uint64_t pruned = 0;
  for (size_t r = 0; r < target->size(); ++r) {
    for (size_t k = 0; k < shared.size(); ++k)
      key[k] = target->At(r, shared[k].first);
    if (keys.count(key) > 0) {
      row.assign(target->Row(r), target->Row(r) + target->width());
      kept.AppendRow(row);
    } else {
      ++pruned;
    }
  }
  *target = std::move(kept);
  return pruned;
}

class LbrRun {
 public:
  LbrRun(const TripleStore& store, const Dictionary& dict, LbrMetrics* metrics)
      : store_(store), dict_(dict), metrics_(metrics) {}

  /// Materializes all pattern tables of the GoSN, depth-first.
  void Materialize(const GosnNode& node) {
    node_tables_[&node] = {};
    for (const TriplePattern& t : node.patterns) {
      node_tables_[&node].push_back(ScanPattern(t));
    }
    for (const auto& c : node.and_children) Materialize(*c);
    for (const auto& c : node.opt_children) Materialize(*c);
  }

  /// Pass 1: top-down / forward. Earlier patterns reduce later ones within
  /// a supernode; a master's patterns reduce every pattern of its slaves
  /// and AND-children.
  void ForwardPass(const GosnNode& node) {
    if (metrics_) ++metrics_->semijoin_passes;
    auto& tables = node_tables_[&node];
    for (size_t i = 0; i < tables.size(); ++i)
      for (size_t j = 0; j < i; ++j)
        Prune(&tables[i], tables[j]);
    for (const auto& c : node.and_children) {
      ReduceChildByParent(node, *c);
      ForwardPass(*c);
    }
    for (const auto& c : node.opt_children) {
      ReduceChildByParent(node, *c);
      ForwardPass(*c);
    }
  }

  /// Pass 2: bottom-up / backward. Later patterns reduce earlier ones;
  /// AND-children (inner joins) reduce their parents; slaves do NOT.
  void BackwardPass(const GosnNode& node) {
    if (metrics_) ++metrics_->semijoin_passes;
    for (const auto& c : node.opt_children) BackwardPass(*c);
    for (const auto& c : node.and_children) {
      BackwardPass(*c);
      ReduceParentByChild(node, *c);
    }
    auto& tables = node_tables_[&node];
    for (size_t i = tables.size(); i-- > 0;)
      for (size_t j = tables.size(); j-- > i + 1;)
        Prune(&tables[i], tables[j]);
  }

  /// Final combination: inner joins in query order, AND-children joined,
  /// slave supernodes attached with left-outer joins.
  BindingSet Combine(const GosnNode& node) {
    BindingSet acc = BindingSet::Unit();
    auto& tables = node_tables_[&node];
    for (auto& table : tables) acc = Join(acc, table.rows);
    for (const auto& c : node.and_children) acc = Join(acc, Combine(*c));
    for (const auto& c : node.opt_children)
      acc = LeftOuterJoin(acc, Combine(*c));
    return acc;
  }

 private:
  struct Table {
    BindingSet rows;
  };

  void Prune(PatternTable* target, const PatternTable& reducer) {
    uint64_t pruned = SemijoinReduce(&target->rows, reducer.rows, metrics_);
    if (metrics_) metrics_->rows_pruned += pruned;
  }

  void ReduceChildByParent(const GosnNode& parent, const GosnNode& child) {
    for (auto& child_table : node_tables_[&child])
      for (const auto& parent_table : node_tables_[&parent])
        Prune(&child_table, parent_table);
  }

  void ReduceParentByChild(const GosnNode& parent, const GosnNode& child) {
    for (auto& parent_table : node_tables_[&parent])
      for (const auto& child_table : node_tables_[&child])
        Prune(&parent_table, child_table);
  }

  PatternTable ScanPattern(const TriplePattern& t) {
    PatternTable table;
    std::vector<VarId> schema = t.Variables();
    table.rows = BindingSet(schema);
    ResolvedPattern r = Resolve(t, dict_);
    if (r.missing_const) return table;
    TriplePatternIds q;
    q.s = r.sv == kInvalidVarId ? r.s : kInvalidTermId;
    q.p = r.pv == kInvalidVarId ? r.p : kInvalidTermId;
    q.o = r.ov == kInvalidVarId ? r.o : kInvalidTermId;
    if (schema.empty()) {
      if (store_.Contains(Triple(r.s, r.p, r.o)))
        table.rows.AppendEmptyMappings(1);
      return table;
    }
    std::vector<TermId> row(schema.size());
    store_.Scan(q, [&](const Triple& tr) {
      if (r.sv != kInvalidVarId && r.sv == r.ov && tr.s != tr.o) return true;
      if (r.sv != kInvalidVarId && r.sv == r.pv && tr.s != tr.p) return true;
      if (r.pv != kInvalidVarId && r.pv == r.ov && tr.p != tr.o) return true;
      for (size_t i = 0; i < schema.size(); ++i) {
        VarId v = schema[i];
        row[i] = v == r.sv ? tr.s : (v == r.pv ? tr.p : tr.o);
      }
      table.rows.AppendRow(row);
      return true;
    });
    return table;
  }

  const TripleStore& store_;
  const Dictionary& dict_;
  LbrMetrics* metrics_;
  std::unordered_map<const GosnNode*, std::vector<PatternTable>> node_tables_;
};

}  // namespace

Result<BindingSet> LbrEngine::Execute(const Query& query,
                                      LbrMetrics* metrics) const {
  auto gosn = BuildGoSN(query.where);
  if (!gosn.ok()) return gosn.status();

  LbrRun run(store_, dict_, metrics);
  run.Materialize(**gosn);
  run.ForwardPass(**gosn);
  run.BackwardPass(**gosn);
  BindingSet rows = run.Combine(**gosn);

  if (!query.projection.empty()) rows = rows.Project(query.projection);
  if (query.distinct) rows = rows.Distinct();
  return rows;
}

}  // namespace sparqluo
