// GoSN (Graph of SuperNodes) — the plan structure of LBR [Atre, SIGMOD'15].
//
// A supernode groups the triple patterns appearing together at one OPTIONAL
// nesting position. Master-slave edges follow OPTIONAL nesting: a master's
// bindings may prune its slaves' candidates, but never the reverse —
// exactly the asymmetry of the left-outer join.
//
// LBR targets SPARQL with OPTIONAL (no UNION); BuildGoSN reports
// Unsupported for queries containing UNION, matching the scope of the
// original system.
#pragma once

#include <memory>
#include <vector>

#include "sparql/ast.h"
#include "util/status.h"

namespace sparqluo {

struct GosnNode {
  /// Triple patterns at this nesting position (in query order; LBR does
  /// not reorder them with a cost model).
  std::vector<TriplePattern> patterns;
  /// Inner-join (AND) sub-supernodes: nested plain groups.
  std::vector<std::unique_ptr<GosnNode>> and_children;
  /// Slave supernodes: OPTIONAL-right groups.
  std::vector<std::unique_ptr<GosnNode>> opt_children;

  /// Variables bound by this supernode's own patterns.
  std::vector<VarId> Variables() const;
};

/// Builds the GoSN of a group graph pattern.
Result<std::unique_ptr<GosnNode>> BuildGoSN(const GroupGraphPattern& group);

}  // namespace sparqluo
