// Naive binary-tree-expression evaluation (Section 4's motivating strawman).
//
// Every triple pattern is materialized independently and results are
// combined bottom-up with binary AND / UNION / OPTIONAL operators, strictly
// following Definition 7. No BGP-level join optimization, no pruning.
//
// This doubles as the correctness oracle for the whole engine: it is a
// direct transliteration of the SPARQL semantics.
#pragma once

#include "algebra/binding_set.h"
#include "rdf/statistics.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "util/status.h"

namespace sparqluo {

class BinaryTreeEvaluator {
 public:
  BinaryTreeEvaluator(const TripleStore& store, const Dictionary& dict)
      : store_(store), dict_(dict) {}

  /// Evaluates a full query (projection + DISTINCT applied).
  Result<BindingSet> Execute(const Query& query) const;

  /// Evaluates a group graph pattern per Definition 7.
  BindingSet EvalGroup(const GroupGraphPattern& group) const;

  /// Materializes a single triple pattern.
  BindingSet EvalTriple(const TriplePattern& t) const;

 private:
  const TripleStore& store_;
  const Dictionary& dict_;
};

}  // namespace sparqluo
