#include "baseline/binary_tree_eval.h"

#include "algebra/operators.h"
#include "bgp/cardinality.h"
#include "engine/path_eval.h"

namespace sparqluo {

BindingSet BinaryTreeEvaluator::EvalTriple(const TriplePattern& t) const {
  std::vector<VarId> schema = t.Variables();
  BindingSet out(schema);
  ResolvedPattern r = Resolve(t, dict_);
  if (r.missing_const) return out;
  TriplePatternIds q;
  q.s = r.sv == kInvalidVarId ? r.s : kInvalidTermId;
  q.p = r.pv == kInvalidVarId ? r.p : kInvalidTermId;
  q.o = r.ov == kInvalidVarId ? r.o : kInvalidTermId;
  if (schema.empty()) {
    if (store_.Contains(Triple(r.s, r.p, r.o))) out.AppendEmptyMappings(1);
    return out;
  }
  std::vector<TermId> row(schema.size());
  store_.Scan(q, [&](const Triple& tr) {
    if (r.sv != kInvalidVarId && r.sv == r.ov && tr.s != tr.o) return true;
    if (r.sv != kInvalidVarId && r.sv == r.pv && tr.s != tr.p) return true;
    if (r.pv != kInvalidVarId && r.pv == r.ov && tr.p != tr.o) return true;
    for (size_t i = 0; i < schema.size(); ++i) {
      VarId v = schema[i];
      row[i] = v == r.sv ? tr.s : (v == r.pv ? tr.p : tr.o);
    }
    out.AppendRow(row);
    return true;
  });
  return out;
}

BindingSet BinaryTreeEvaluator::EvalGroup(const GroupGraphPattern& group) const {
  BindingSet acc = BindingSet::Unit();
  for (const PatternElement& e : group.elements) {
    switch (e.kind) {
      case PatternElement::Kind::kTriple:
        acc = Join(acc, EvalTriple(e.triple));
        break;
      case PatternElement::Kind::kGroup:
        acc = Join(acc, EvalGroup(e.groups[0]));
        break;
      case PatternElement::Kind::kUnion: {
        BindingSet u = EvalGroup(e.groups[0]);
        for (size_t i = 1; i < e.groups.size(); ++i)
          u = UnionBag(u, EvalGroup(e.groups[i]));
        acc = Join(acc, u);
        break;
      }
      case PatternElement::Kind::kOptional:
        acc = LeftOuterJoin(acc, EvalGroup(e.groups[0]));
        break;
      case PatternElement::Kind::kFilter:
        acc = ApplyFilter(acc, e.filter, dict_);
        break;
      case PatternElement::Kind::kPath:
        acc = Join(acc, EvaluatePath(e.path, store_, dict_, nullptr, nullptr,
                                     ParallelSpec{}));
        break;
    }
  }
  return acc;
}

Result<BindingSet> BinaryTreeEvaluator::Execute(const Query& query) const {
  BindingSet rows = EvalGroup(query.where);
  if (!query.projection.empty()) rows = rows.Project(query.projection);
  if (query.distinct) rows = rows.Distinct();
  return rows;
}

}  // namespace sparqluo
