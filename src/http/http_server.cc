#include "http/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace sparqluo {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Sentinels for HttpExchange::BuildHead's content_length parameter.
constexpr size_t kChunkedBody = static_cast<size_t>(-1);
constexpr size_t kCloseDelimitedBody = static_cast<size_t>(-2);

}  // namespace

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 406: return "Not Acceptable";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 415: return "Unsupported Media Type";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
  }
}

/// Wakes the event thread from other threads. Owns the eventfd, and is
/// held via shared_ptr by the server AND every connection, so a producer
/// notifying after the server object is gone still writes a live fd.
/// `pending` holds weak refs: connections are owned by the server's map,
/// and a strong back-reference here would cycle with HttpConnection's
/// waker pointer, leaking any connection notified but never drained
/// (e.g. when the event loop stops with wakeups still queued).
struct HttpWaker {
  int efd = -1;
  std::thread::id event_thread;  ///< Set once, before any dispatch.
  std::mutex mu;
  std::vector<std::weak_ptr<HttpConnection>> pending;

  HttpWaker() : efd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {}
  ~HttpWaker() {
    if (efd >= 0) ::close(efd);
  }

  void Ping() {
    uint64_t one = 1;
    ssize_t rc = ::write(efd, &one, sizeof(one));
    (void)rc;  // EAGAIN just means a wakeup is already pending
  }

  void Notify(const std::shared_ptr<HttpConnection>& conn) {
    {
      std::lock_guard<std::mutex> lk(mu);
      pending.push_back(conn);
    }
    Ping();
  }

  std::vector<std::shared_ptr<HttpConnection>> Drain() {
    uint64_t buf;
    while (::read(efd, &buf, sizeof(buf)) > 0) {
    }
    std::vector<std::weak_ptr<HttpConnection>> taken;
    {
      std::lock_guard<std::mutex> lk(mu);
      taken = std::exchange(pending, {});
    }
    std::vector<std::shared_ptr<HttpConnection>> live;
    live.reserve(taken.size());
    for (const auto& weak : taken)
      if (auto conn = weak.lock()) live.push_back(std::move(conn));
    return live;
  }
};

/// Per-connection state. Socket, parser and epoll bookkeeping belong to
/// the event thread exclusively; the output queue block is the only state
/// shared with producer threads, guarded by `mu`.
struct HttpConnection {
  // --- event thread only ---
  int fd = -1;
  HttpRequestParser parser;
  bool handling = false;   ///< A request was dispatched; reads are paused.
  bool peer_eof = false;   ///< recv() saw EOF; never keep-alive afterwards.
  bool armed_read = false;
  bool armed_write = false;
  SteadyClock::time_point last_read_activity;
  SteadyClock::time_point stall_since{};  ///< Zero = output is not stalled.
  size_t front_consumed = 0;  ///< Bytes of outq.front() already sent.

  // --- shared with producers, guarded by mu ---
  std::mutex mu;
  std::condition_variable cv;  ///< Producers wait here for queue drain.
  std::deque<std::string> outq;
  size_t outq_bytes = 0;
  bool response_done = false;  ///< Current response fully enqueued.
  bool close_after = false;
  bool closed = false;

  // --- immutable after accept ---
  std::shared_ptr<HttpWaker> waker;
  size_t high_water = 0;

  explicit HttpConnection(const HttpRequestParser::Limits& limits)
      : parser(limits) {}
};

namespace {

/// Appends `data` to the connection's output queue, blocking while the
/// queue is at its high-water mark (unless called on the event thread,
/// which must never block on itself). `last` marks the response complete;
/// `close` requests connection close once everything is flushed. Returns
/// false when the connection is already dead.
bool Enqueue(const std::shared_ptr<HttpConnection>& conn, std::string data,
             bool last, bool close) {
  bool event_thread =
      std::this_thread::get_id() == conn->waker->event_thread;
  {
    std::unique_lock<std::mutex> lk(conn->mu);
    if (!event_thread) {
      conn->cv.wait(lk, [&] {
        return conn->closed || conn->outq_bytes < conn->high_water;
      });
    }
    if (conn->closed) return false;
    if (!data.empty()) {
      conn->outq_bytes += data.size();
      conn->outq.push_back(std::move(data));
    }
    if (last) conn->response_done = true;
    if (close) conn->close_after = true;
  }
  conn->waker->Notify(conn);
  return true;
}

}  // namespace

// ----------------------------------------------------------------------
// HttpExchange
// ----------------------------------------------------------------------

HttpExchange::HttpExchange(std::shared_ptr<HttpConnection> conn,
                           HttpRequest request)
    : conn_(std::move(conn)), request_(std::move(request)) {}

HttpExchange::~HttpExchange() {
  if (stage_ == Stage::kHead) {
    // The handler dropped the exchange without answering.
    Respond(500, "text/plain; charset=utf-8",
            "request handler produced no response\n");
  } else if (stage_ == Stage::kStreaming) {
    // A chunked body without its terminal chunk must not look complete:
    // sever the connection so the client sees the truncation.
    Enqueue(conn_, std::string(), /*last=*/true, /*close=*/true);
  }
}

std::string HttpExchange::BuildHead(
    int status, std::string_view content_type,
    const std::vector<HttpHeader>& extra_headers, size_t content_length,
    bool keep_alive) const {
  std::string head = "HTTP/1.1 ";
  head += std::to_string(status);
  head += ' ';
  head += HttpStatusReason(status);
  head += "\r\n";
  if (!content_type.empty()) {
    head += "Content-Type: ";
    head += content_type;
    head += "\r\n";
  }
  if (content_length == kChunkedBody) {
    head += "Transfer-Encoding: chunked\r\n";
  } else if (content_length != kCloseDelimitedBody) {
    head += "Content-Length: ";
    head += std::to_string(content_length);
    head += "\r\n";
  }
  for (const HttpHeader& h : extra_headers) {
    head += h.name;
    head += ": ";
    head += h.value;
    head += "\r\n";
  }
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  head += "\r\n";
  return head;
}

void HttpExchange::Respond(int status, std::string_view content_type,
                           std::string body,
                           std::vector<HttpHeader> extra_headers) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stage_ != Stage::kHead) return;  // one response per exchange
  stage_ = Stage::kDone;
  bool keep_alive = request_.keep_alive && !force_close_;
  std::string out =
      BuildHead(status, content_type, extra_headers, body.size(), keep_alive);
  out += body;
  Enqueue(conn_, std::move(out), /*last=*/true, /*close=*/!keep_alive);
}

bool HttpExchange::BeginStreaming(int status, std::string_view content_type,
                                  std::vector<HttpHeader> extra_headers) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stage_ != Stage::kHead) return false;
  stage_ = Stage::kStreaming;
  bool keep_alive = request_.keep_alive && !force_close_;
  size_t framing = kChunkedBody;
  if (request_.version_minor < 1) {
    // HTTP/1.0 has no chunked framing: stream raw and delimit by close.
    chunked_ = false;
    keep_alive = false;
    framing = kCloseDelimitedBody;
  } else {
    chunked_ = true;
  }
  return Enqueue(
      conn_, BuildHead(status, content_type, extra_headers, framing, keep_alive),
      /*last=*/false, /*close=*/!keep_alive);
}

bool HttpExchange::Write(std::string_view data) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stage_ != Stage::kStreaming) return false;
  if (data.empty()) return !client_gone();
  std::string piece;
  if (chunked_) {
    char size_line[20];
    int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
    piece.reserve(static_cast<size_t>(n) + data.size() + 2);
    piece.append(size_line, static_cast<size_t>(n));
    piece.append(data);
    piece += "\r\n";
  } else {
    piece.assign(data);
  }
  return Enqueue(conn_, std::move(piece), /*last=*/false, /*close=*/false);
}

void HttpExchange::EndStreaming() {
  std::lock_guard<std::mutex> lk(mu_);
  if (stage_ != Stage::kStreaming) return;
  stage_ = Stage::kDone;
  Enqueue(conn_, chunked_ ? std::string("0\r\n\r\n") : std::string(),
          /*last=*/true, /*close=*/false);
}

bool HttpExchange::client_gone() const {
  std::lock_guard<std::mutex> lk(conn_->mu);
  return conn_->closed;
}

// ----------------------------------------------------------------------
// HttpServer
// ----------------------------------------------------------------------

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (running_.load()) return Status::FailedPrecondition("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    Status status = Status::Internal(std::string("bind/listen on ") +
                                     options_.bind_address + ": " +
                                     std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  waker_ = std::make_shared<HttpWaker>();
  if (epoll_fd_ < 0 || waker_->efd < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    epoll_fd_ = -1;
    waker_.reset();
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = waker_->efd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, waker_->efd, &ev);

  if (options_.enable_metrics) {
    MetricRegistry& reg = MetricRegistry::Global();
    accepted_total_ = reg.GetCounter("sparqluo_http_connections_accepted_total",
                                     "TCP connections accepted");
    requests_total_ = reg.GetCounter("sparqluo_http_requests_total",
                                     "HTTP requests dispatched to the handler");
    parse_errors_total_ = reg.GetCounter(
        "sparqluo_http_parse_errors_total",
        "Requests rejected by the HTTP parser (4xx/5xx before dispatch)");
    idle_timeouts_total_ =
        reg.GetCounter("sparqluo_http_timeouts_total",
                       "Connections closed by a server-side timeout",
                       "kind=\"idle\"");
    stall_timeouts_total_ =
        reg.GetCounter("sparqluo_http_timeouts_total",
                       "Connections closed by a server-side timeout",
                       "kind=\"write_stall\"");
    bytes_read_total_ =
        reg.GetCounter("sparqluo_http_io_bytes_total",
                       "Bytes moved over HTTP connections",
                       "direction=\"read\"");
    bytes_written_total_ =
        reg.GetCounter("sparqluo_http_io_bytes_total",
                       "Bytes moved over HTTP connections",
                       "direction=\"write\"");
    active_gauge_ = reg.GetGauge("sparqluo_http_connections_active",
                                 "Currently open HTTP connections");
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  event_thread_ = std::thread(&HttpServer::EventLoop, this);
  return Status::OK();
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (!running_.load()) return;
  stopping_.store(true, std::memory_order_release);
  waker_->Ping();
  if (event_thread_.joinable()) event_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void HttpServer::EventLoop() {
  waker_->event_thread = std::this_thread::get_id();
  std::vector<epoll_event> events(128);
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), 250);
    if (n < 0) {
      if (errno == EINTR) continue;
      SPARQLUO_LOG(kError) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptConnections();
        continue;
      }
      if (fd == waker_->efd) {
        for (const auto& conn : waker_->Drain())
          if (conn->fd >= 0) FlushOut(conn);
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      std::shared_ptr<HttpConnection> conn = it->second;
      if (ev & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn);
        continue;
      }
      if ((ev & EPOLLOUT) && conn->fd >= 0) FlushOut(conn);
      if ((ev & EPOLLIN) && conn->fd >= 0) ReadSome(conn);
    }
    SweepTimeouts();
  }
  // Shutdown: close every connection (unblocks producers) and bail.
  std::vector<std::shared_ptr<HttpConnection>> all;
  all.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) all.push_back(conn);
  for (const auto& conn : all) CloseConnection(conn);
}

void HttpServer::AcceptConnections() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      SPARQLUO_LOG(kWarn) << "accept4: " << std::strerror(errno);
      return;
    }
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<HttpConnection>(options_.limits);
    conn->fd = fd;
    conn->waker = waker_;
    conn->high_water = options_.out_queue_high_water;
    conn->last_read_activity = SteadyClock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conn->armed_read = true;
    connections_[fd] = std::move(conn);
    active_.fetch_add(1, std::memory_order_relaxed);
    if (accepted_total_ != nullptr) accepted_total_->Increment();
    if (active_gauge_ != nullptr) active_gauge_->Add(1);
  }
}

void HttpServer::UpdateInterest(const std::shared_ptr<HttpConnection>& conn,
                                bool want_read, bool want_write) {
  if (conn->fd < 0) return;
  if (conn->armed_read == want_read && conn->armed_write == want_write) return;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->armed_read = want_read;
  conn->armed_write = want_write;
}

void HttpServer::ReadSome(const std::shared_ptr<HttpConnection>& conn) {
  char buf[16 * 1024];
  for (;;) {
    if (conn->handling) break;  // reads paused; kernel buffers pipelining
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (bytes_read_total_ != nullptr)
        bytes_read_total_->Increment(static_cast<uint64_t>(n));
      conn->last_read_activity = SteadyClock::now();
      conn->parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (conn->parser.state() != HttpRequestParser::State::kNeedMore) break;
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;
      bool queue_empty;
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        queue_empty = conn->outq.empty();
      }
      // No complete request pending and nothing left to send: plain close.
      if (!conn->handling && queue_empty &&
          conn->parser.state() == HttpRequestParser::State::kNeedMore) {
        CloseConnection(conn);
        return;
      }
      UpdateInterest(conn, false, conn->armed_write);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn);
    return;
  }
  if (conn->fd >= 0) MaybeDispatch(conn);
}

void HttpServer::MaybeDispatch(const std::shared_ptr<HttpConnection>& conn) {
  if (conn->handling || conn->fd < 0) return;
  switch (conn->parser.state()) {
    case HttpRequestParser::State::kNeedMore:
      return;
    case HttpRequestParser::State::kComplete: {
      HttpRequest request = conn->parser.TakeRequest();
      conn->handling = true;
      UpdateInterest(conn, false, conn->armed_write);
      if (requests_total_ != nullptr) requests_total_->Increment();
      std::shared_ptr<HttpExchange> exchange(
          new HttpExchange(conn, std::move(request)));
      try {
        handler_(exchange);
      } catch (const std::exception& e) {
        SPARQLUO_LOG(kError) << "HTTP handler threw: " << e.what();
        exchange->Respond(500, "text/plain; charset=utf-8",
                          "internal server error\n");
      } catch (...) {
        SPARQLUO_LOG(kError) << "HTTP handler threw an unknown exception";
        exchange->Respond(500, "text/plain; charset=utf-8",
                          "internal server error\n");
      }
      FlushOut(conn);  // a synchronous response is usually ready right now
      return;
    }
    case HttpRequestParser::State::kError: {
      if (parse_errors_total_ != nullptr) parse_errors_total_->Increment();
      conn->handling = true;  // no further dispatch on this connection
      UpdateInterest(conn, false, conn->armed_write);
      int status = conn->parser.error_status();
      std::string body = conn->parser.error_message() + "\n";
      std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                        HttpStatusReason(status) +
                        "\r\nContent-Type: text/plain; charset=utf-8"
                        "\r\nContent-Length: " +
                        std::to_string(body.size()) +
                        "\r\nConnection: close\r\n\r\n" + body;
      Enqueue(conn, std::move(out), /*last=*/true, /*close=*/true);
      FlushOut(conn);
      return;
    }
  }
}

void HttpServer::FlushOut(const std::shared_ptr<HttpConnection>& conn) {
  if (conn->fd < 0) return;
  bool progressed = false;
  for (;;) {
    std::string* front = nullptr;
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      if (conn->outq.empty()) break;
      // Safe to use outside the lock: producers only push_back (which
      // never invalidates front()) and only this thread pops.
      front = &conn->outq.front();
    }
    ssize_t n = ::send(conn->fd, front->data() + conn->front_consumed,
                       front->size() - conn->front_consumed, MSG_NOSIGNAL);
    if (n > 0) {
      progressed = true;
      if (bytes_written_total_ != nullptr)
        bytes_written_total_->Increment(static_cast<uint64_t>(n));
      conn->front_consumed += static_cast<size_t>(n);
      if (conn->front_consumed == front->size()) {
        std::lock_guard<std::mutex> lk(conn->mu);
        conn->outq_bytes -= front->size();
        conn->outq.pop_front();
        conn->front_consumed = 0;
        if (conn->outq_bytes < conn->high_water) conn->cv.notify_all();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn);  // EPIPE / ECONNRESET: client is gone
    return;
  }

  bool queue_empty, response_done, close_after;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    queue_empty = conn->outq.empty();
    response_done = conn->response_done;
    close_after = conn->close_after;
    if (queue_empty && response_done) conn->response_done = false;
  }
  if (progressed) conn->stall_since = SteadyClock::time_point{};
  if (!queue_empty) {
    if (conn->stall_since == SteadyClock::time_point{})
      conn->stall_since = SteadyClock::now();
    UpdateInterest(conn, conn->armed_read, true);
    return;
  }
  conn->stall_since = SteadyClock::time_point{};
  if (!response_done) {
    UpdateInterest(conn, conn->armed_read, false);
    return;
  }
  // Response complete: close, or turn the connection around for the next
  // request (which may already be parsed, when the client pipelined).
  conn->handling = false;
  if (close_after || conn->peer_eof ||
      stopping_.load(std::memory_order_acquire)) {
    CloseConnection(conn);
    return;
  }
  conn->last_read_activity = SteadyClock::now();
  UpdateInterest(conn, true, false);
  MaybeDispatch(conn);
}

void HttpServer::CloseConnection(const std::shared_ptr<HttpConnection>& conn) {
  if (conn->fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections_.erase(conn->fd);
  conn->fd = -1;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    conn->closed = true;
  }
  conn->cv.notify_all();  // unblock any producer stuck in Enqueue
  active_.fetch_sub(1, std::memory_order_relaxed);
  if (active_gauge_ != nullptr) active_gauge_->Add(-1);
}

void HttpServer::SweepTimeouts() {
  SteadyClock::time_point now = SteadyClock::now();
  std::vector<std::shared_ptr<HttpConnection>> idle, stalled;
  for (const auto& [fd, conn] : connections_) {
    if (conn->stall_since != SteadyClock::time_point{} &&
        now - conn->stall_since > options_.write_stall_timeout) {
      stalled.push_back(conn);
    } else if (!conn->handling &&
               now - conn->last_read_activity > options_.idle_timeout) {
      idle.push_back(conn);
    }
  }
  for (const auto& conn : idle) {
    if (idle_timeouts_total_ != nullptr) idle_timeouts_total_->Increment();
    CloseConnection(conn);
  }
  for (const auto& conn : stalled) {
    if (stall_timeouts_total_ != nullptr) stall_timeouts_total_->Increment();
    CloseConnection(conn);
  }
}

}  // namespace sparqluo
