// Incremental HTTP/1.1 request parsing (RFC 9112 subset) plus the URL /
// form / Accept-header decoding helpers the SPARQL Protocol endpoint
// needs. Pure byte-level code with no socket dependency, so the torture
// suite can drive it through every truncation and split without a server.
//
// HttpRequestParser is a resumable state machine: Feed() it arbitrary
// byte slices (a TCP stream's reads) and it consumes request line,
// headers, and body — Content-Length or chunked — across any split
// points, enforcing configurable size limits. When a request completes,
// leftover bytes stay buffered for the next pipelined request:
//
//   parser.Feed(bytes);
//   while (parser.state() == HttpRequestParser::State::kComplete) {
//     HttpRequest req = parser.TakeRequest();   // re-parses any leftover
//     ...handle req...
//   }
//   if (parser.state() == State::kError) ...send parser.error_status()...
//
// Errors are sticky and carry the HTTP status code the server should
// answer with (400, 413, 414, 431, 501, 505).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sparqluo {

struct HttpHeader {
  std::string name;
  std::string value;
};

/// ASCII case-insensitive string equality (header names, token values).
bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b);

/// One fully-parsed request.
struct HttpRequest {
  std::string method;        ///< As sent (methods are case-sensitive tokens).
  std::string target;        ///< Raw request target (path + "?" + query).
  std::string path;          ///< Percent-decoded path component.
  std::string query_string;  ///< Raw (still-encoded) part after '?'.
  int version_minor = 1;     ///< 1 for HTTP/1.1, 0 for HTTP/1.0.
  std::vector<HttpHeader> headers;
  std::string body;
  bool keep_alive = true;    ///< After Connection / version defaulting.

  /// First header value whose name matches case-insensitively, or null.
  const std::string* FindHeader(std::string_view name) const;
};

class HttpRequestParser {
 public:
  struct Limits {
    size_t max_request_line = 8 * 1024;   ///< Overrun -> 414.
    size_t max_header_bytes = 64 * 1024;  ///< All header lines -> 431.
    size_t max_body_bytes = 16 * 1024 * 1024;  ///< -> 413.
  };

  enum class State { kNeedMore, kComplete, kError };

  HttpRequestParser() : HttpRequestParser(Limits()) {}
  explicit HttpRequestParser(Limits limits);

  /// Appends bytes and advances the state machine as far as possible.
  State Feed(std::string_view data);

  State state() const { return state_; }

  /// Valid in kComplete: moves the request out and immediately resumes
  /// parsing any buffered leftover bytes (pipelining) — check state()
  /// again afterwards.
  HttpRequest TakeRequest();

  /// Valid in kError: the HTTP status the connection should answer with
  /// before closing, and a one-line diagnostic.
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// Unconsumed bytes currently buffered (leftover pipelined data).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  enum class Phase {
    kRequestLine,
    kHeaders,
    kBody,
    kChunkSize,
    kChunkData,
    kChunkDataEnd,
    kChunkTrailer,
    kDone,
  };

  void Parse();
  bool ParseRequestLine(std::string_view line);
  bool ParseHeaderLine(std::string_view line);
  bool FinishHeaders();
  void Fail(int status, std::string message);
  /// Extracts the next line (up to LF) from buffer_ starting at pos_,
  /// stripping the line ending; returns false when no full line is
  /// buffered yet. CRLF and bare LF both terminate a line.
  bool NextLine(std::string_view* line);

  Limits limits_;
  State state_ = State::kNeedMore;
  Phase phase_ = Phase::kRequestLine;
  std::string buffer_;
  size_t pos_ = 0;  ///< Consumed prefix of buffer_ (compacted in Parse).
  HttpRequest request_;
  size_t header_bytes_ = 0;
  size_t body_expected_ = 0;   ///< Remaining Content-Length / chunk bytes.
  bool body_chunked_ = false;
  int error_status_ = 0;
  std::string error_message_;
};

/// Percent-decodes `in` into `*out` (cleared first). With `plus_as_space`,
/// '+' decodes to ' ' (the application/x-www-form-urlencoded rule).
/// Returns false on a malformed escape (%, %X, %GG); UTF-8 and arbitrary
/// bytes pass through as-is.
bool PercentDecode(std::string_view in, bool plus_as_space, std::string* out);

/// Parses an application/x-www-form-urlencoded string (also the format of
/// a URL query string) into decoded key/value pairs, preserving order and
/// duplicates. Returns false on a malformed escape in any key or value.
bool ParseFormUrlEncoded(std::string_view in,
                         std::vector<std::pair<std::string, std::string>>* out);

/// The media type of a Content-Type header value: the part before any
/// ';' parameters, trimmed and lowercased.
std::string MediaTypeOf(std::string_view content_type);

/// SPARQL result content negotiation over an Accept header value: picks
/// JSON (application/sparql-results+json, application/json, application/*),
/// TSV (text/tab-separated-values, text/*) or N-Triples
/// (application/n-triples, exact match only — wildcards never select it)
/// by highest q-value, with more specific matches beating wildcards at
/// equal q and JSON winning exact ties. Returns false when nothing
/// acceptable matches (-> 406). An empty/absent header accepts anything
/// (JSON; the endpoint upgrades CONSTRUCT responses to N-Triples itself).
/// `format_out` may be null to just test acceptability.
enum class WireFormat;  // sparql/result_writer.h
bool NegotiateResultFormat(std::string_view accept, WireFormat* format_out);

}  // namespace sparqluo
