// Minimal epoll-based HTTP/1.1 server for the SPARQL Protocol endpoint.
//
// One event thread owns every socket: it accepts connections, reads and
// parses requests (http/http_parser.h), and flushes response bytes. Request
// handling is pushed out through a Handler callback that receives an
// HttpExchange — a thread-safe handle the handler (or any worker thread it
// forwards the exchange to) uses to send the response:
//
//   server.Start();
//   ...
//   void Handle(std::shared_ptr<HttpExchange> ex) {
//     if (ex->request().path == "/healthz") {
//       ex->Respond(200, "text/plain", "ok\n");
//       return;                       // synchronous, on the event thread
//     }
//     pool->Submit([ex] {             // or asynchronous, from any thread
//       ex->BeginStreaming(200, "application/sparql-results+json");
//       while (...) if (!ex->Write(chunk)) break;   // blocks on backpressure
//       ex->EndStreaming();
//     });
//   }
//
// Backpressure: response bytes go into a per-connection bounded queue the
// event thread drains into the socket. Write() from a worker blocks once
// the queue holds Options::out_queue_high_water bytes and resumes as the
// client reads — so streaming a huge result set holds O(high_water) memory,
// not the whole body. A client that stops reading trips the write-stall
// timeout; the event thread closes the connection, which unblocks the
// worker with Write() == false (same as any disconnect mid-response).
//
// Keep-alive and pipelining: reads are disabled while a request is being
// handled (a pipelined burst is buffered by the kernel / parser, bounding
// per-connection memory) and re-enabled when its response finishes, at
// which point an already-buffered next request dispatches immediately.
// Connections idle longer than Options::idle_timeout while waiting for a
// request are closed (slow-loris guard).
//
// The server never touches query machinery; src/server/sparql_endpoint.h
// supplies the Handler that routes to QueryService.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "http/http_parser.h"
#include "util/status.h"

namespace sparqluo {

class Counter;
class Gauge;
struct HttpConnection;  // internal to http_server.cc
struct HttpWaker;       // internal to http_server.cc

/// Canonical reason phrase for an HTTP status code ("OK", "Not Found", ...).
const char* HttpStatusReason(int status);

/// A single request/response exchange, handed to the server's Handler.
///
/// Thread-safe handle: the handler may respond synchronously on the event
/// thread or hand the exchange to a worker and respond later — the
/// connection stays open (reads paused) until the response completes.
/// Exactly one response per exchange: either one Respond() call, or
/// BeginStreaming() + Write()* + EndStreaming(). Dropping the last
/// reference without responding sends a 500 (or, mid-stream, severs the
/// connection, since a truncated chunked body must not look complete).
class HttpExchange {
 public:
  ~HttpExchange();
  HttpExchange(const HttpExchange&) = delete;
  HttpExchange& operator=(const HttpExchange&) = delete;

  const HttpRequest& request() const { return request_; }

  /// Sends a complete response with a Content-Length body.
  void Respond(int status, std::string_view content_type, std::string body,
               std::vector<HttpHeader> extra_headers = {});

  /// Starts a streaming response (Transfer-Encoding: chunked on HTTP/1.1;
  /// close-delimited on HTTP/1.0). Returns false if the client is gone.
  bool BeginStreaming(int status, std::string_view content_type,
                      std::vector<HttpHeader> extra_headers = {});

  /// Appends one piece of the streaming body. Blocks while the connection's
  /// output queue is at its high-water mark (client-paced backpressure).
  /// Returns false once the client has disconnected or the server closed
  /// the connection (write stall, shutdown) — the response is abandoned.
  bool Write(std::string_view data);

  /// Completes a streaming response (sends the terminal chunk).
  void EndStreaming();

  /// True once the connection is known dead. A false result is advisory —
  /// the client can vanish at any moment; Write()'s result is the truth.
  bool client_gone() const;

  /// Forces Connection: close after this response (e.g. server draining).
  void set_close_after_response() { force_close_ = true; }

 private:
  friend class HttpServer;
  HttpExchange(std::shared_ptr<HttpConnection> conn, HttpRequest request);

  /// Builds the status line + headers block. Content length of SIZE_MAX
  /// means chunked; SIZE_MAX - 1 means close-delimited (no framing header).
  std::string BuildHead(int status, std::string_view content_type,
                        const std::vector<HttpHeader>& extra_headers,
                        size_t content_length, bool keep_alive) const;

  enum class Stage { kHead, kStreaming, kDone };

  std::shared_ptr<HttpConnection> conn_;
  HttpRequest request_;
  std::mutex mu_;          ///< Serializes stage transitions.
  Stage stage_ = Stage::kHead;
  bool chunked_ = false;   ///< Streaming with chunked framing (HTTP/1.1).
  bool force_close_ = false;
};

class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";  ///< IPv4 dotted quad.
    uint16_t port = 0;                       ///< 0 picks an ephemeral port.
    int backlog = 128;
    HttpRequestParser::Limits limits;
    /// Close connections that sit without sending a (complete) request.
    std::chrono::milliseconds idle_timeout{30'000};
    /// Close connections whose client stops reading mid-response.
    std::chrono::milliseconds write_stall_timeout{30'000};
    /// Accepted connections beyond this are closed immediately.
    size_t max_connections = 10'000;
    /// Response-queue bytes at which HttpExchange::Write blocks.
    size_t out_queue_high_water = 4 * 1024 * 1024;
    /// Register sparqluo_http_* metrics in MetricRegistry::Global().
    bool enable_metrics = true;
  };

  using Handler = std::function<void(std::shared_ptr<HttpExchange>)>;

  HttpServer(Options options, Handler handler);
  ~HttpServer();  ///< Runs Stop().

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and starts the event thread. On success port() holds
  /// the actual (possibly ephemeral) port.
  Status Start();

  /// Closes the listener and every connection (unblocking any worker
  /// stuck in HttpExchange::Write), then joins the event thread.
  /// In-flight exchanges remain safe to use; their writes return false.
  /// Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Currently-open connections (approximate; for tests and metrics).
  size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  void EventLoop();
  void AcceptConnections();
  void ReadSome(const std::shared_ptr<HttpConnection>& conn);
  void MaybeDispatch(const std::shared_ptr<HttpConnection>& conn);
  /// Drains the connection's output queue into the socket; finishes the
  /// response (keep-alive turnaround or close) when it completes.
  void FlushOut(const std::shared_ptr<HttpConnection>& conn);
  void CloseConnection(const std::shared_ptr<HttpConnection>& conn);
  void SweepTimeouts();
  /// Re-arms the epoll interest set for the connection's current state.
  void UpdateInterest(const std::shared_ptr<HttpConnection>& conn,
                      bool want_read, bool want_write);

  Options options_;
  Handler handler_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  uint16_t port_ = 0;
  std::thread event_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> active_{0};

  std::shared_ptr<HttpWaker> waker_;
  std::unordered_map<int, std::shared_ptr<HttpConnection>> connections_;

  // Null when Options::enable_metrics is false.
  Counter* accepted_total_ = nullptr;
  Counter* requests_total_ = nullptr;
  Counter* parse_errors_total_ = nullptr;
  Counter* idle_timeouts_total_ = nullptr;
  Counter* stall_timeouts_total_ = nullptr;
  Counter* bytes_read_total_ = nullptr;
  Counter* bytes_written_total_ = nullptr;
  Gauge* active_gauge_ = nullptr;

  std::mutex lifecycle_mu_;  ///< Serializes Start/Stop.
};

}  // namespace sparqluo
