#include "http/http_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "sparql/result_writer.h"
#include "util/string_util.h"

namespace sparqluo {

namespace {

bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), IsTokenChar);
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const HttpHeader& h : headers)
    if (AsciiEqualsIgnoreCase(h.name, name)) return &h.value;
  return nullptr;
}

HttpRequestParser::HttpRequestParser(Limits limits) : limits_(limits) {}

void HttpRequestParser::Fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = std::move(message);
}

bool HttpRequestParser::NextLine(std::string_view* line) {
  size_t nl = buffer_.find('\n', pos_);
  if (nl == std::string::npos) return false;
  size_t end = nl;
  if (end > pos_ && buffer_[end - 1] == '\r') --end;
  *line = std::string_view(buffer_).substr(pos_, end - pos_);
  pos_ = nl + 1;
  return true;
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view data) {
  if (state_ == State::kError) return state_;
  buffer_.append(data.data(), data.size());
  if (state_ != State::kComplete) Parse();
  return state_;
}

HttpRequest HttpRequestParser::TakeRequest() {
  HttpRequest taken = std::move(request_);
  request_ = HttpRequest();
  phase_ = Phase::kRequestLine;
  state_ = State::kNeedMore;
  header_bytes_ = 0;
  body_expected_ = 0;
  body_chunked_ = false;
  Parse();  // a pipelined request may already be fully buffered
  return taken;
}

void HttpRequestParser::Parse() {
  while (state_ == State::kNeedMore) {
    switch (phase_) {
      case Phase::kRequestLine: {
        std::string_view line;
        if (!NextLine(&line)) {
          if (buffer_.size() - pos_ > limits_.max_request_line)
            Fail(414, "request line exceeds limit");
          goto done;
        }
        if (line.empty()) continue;  // ignore leading blank lines (RFC 9112)
        if (line.size() > limits_.max_request_line) {
          Fail(414, "request line exceeds limit");
          goto done;
        }
        if (!ParseRequestLine(line)) goto done;
        phase_ = Phase::kHeaders;
        break;
      }
      case Phase::kHeaders: {
        std::string_view line;
        if (!NextLine(&line)) {
          if (buffer_.size() - pos_ > limits_.max_header_bytes)
            Fail(431, "header section exceeds limit");
          goto done;
        }
        header_bytes_ += line.size() + 2;
        if (header_bytes_ > limits_.max_header_bytes) {
          Fail(431, "header section exceeds limit");
          goto done;
        }
        if (line.empty()) {
          if (!FinishHeaders()) goto done;
          break;
        }
        if (!ParseHeaderLine(line)) goto done;
        break;
      }
      case Phase::kBody: {
        size_t avail = buffer_.size() - pos_;
        size_t take = std::min(avail, body_expected_);
        request_.body.append(buffer_, pos_, take);
        pos_ += take;
        body_expected_ -= take;
        if (body_expected_ > 0) goto done;
        phase_ = Phase::kDone;
        break;
      }
      case Phase::kChunkSize: {
        std::string_view line;
        if (!NextLine(&line)) {
          if (buffer_.size() - pos_ > limits_.max_request_line)
            Fail(400, "chunk size line exceeds limit");
          goto done;
        }
        // chunk-size [";" extensions] — hex digits, at least one.
        size_t i = 0;
        uint64_t size = 0;
        for (; i < line.size() && HexValue(line[i]) >= 0; ++i) {
          if (size > (uint64_t{1} << 50)) break;  // absurd; caught below
          size = size * 16 + static_cast<uint64_t>(HexValue(line[i]));
        }
        if (i == 0 || (i < line.size() && line[i] != ';')) {
          Fail(400, "malformed chunk size");
          goto done;
        }
        if (size > limits_.max_body_bytes ||
            request_.body.size() + size > limits_.max_body_bytes) {
          Fail(413, "chunked body exceeds limit");
          goto done;
        }
        if (size == 0) {
          phase_ = Phase::kChunkTrailer;
        } else {
          body_expected_ = static_cast<size_t>(size);
          phase_ = Phase::kChunkData;
        }
        break;
      }
      case Phase::kChunkData: {
        size_t avail = buffer_.size() - pos_;
        size_t take = std::min(avail, body_expected_);
        request_.body.append(buffer_, pos_, take);
        pos_ += take;
        body_expected_ -= take;
        if (body_expected_ > 0) goto done;
        phase_ = Phase::kChunkDataEnd;
        break;
      }
      case Phase::kChunkDataEnd: {
        std::string_view line;
        if (!NextLine(&line)) goto done;
        if (!line.empty()) {
          Fail(400, "missing CRLF after chunk data");
          goto done;
        }
        phase_ = Phase::kChunkSize;
        break;
      }
      case Phase::kChunkTrailer: {
        std::string_view line;
        if (!NextLine(&line)) {
          if (buffer_.size() - pos_ > limits_.max_header_bytes)
            Fail(431, "trailer section exceeds limit");
          goto done;
        }
        header_bytes_ += line.size() + 2;
        if (header_bytes_ > limits_.max_header_bytes) {
          Fail(431, "trailer section exceeds limit");
          goto done;
        }
        if (line.empty()) phase_ = Phase::kDone;  // trailers are discarded
        break;
      }
      case Phase::kDone:
        state_ = State::kComplete;
        break;
    }
  }
done:
  // Compact the consumed prefix so long-lived keep-alive connections do
  // not accrete memory.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
}

bool HttpRequestParser::ParseRequestLine(std::string_view line) {
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    Fail(400, "malformed request line");
    return false;
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) {
    Fail(400, "malformed method token");
    return false;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
    request_.keep_alive = true;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
    request_.keep_alive = false;
  } else if (StartsWith(version, "HTTP/")) {
    Fail(505, "unsupported HTTP version");
    return false;
  } else {
    Fail(400, "malformed HTTP version");
    return false;
  }
  if (target.empty() || target[0] != '/') {
    Fail(400, "only origin-form request targets are supported");
    return false;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  size_t qmark = target.find('?');
  std::string_view raw_path = target.substr(0, qmark);
  if (qmark != std::string_view::npos)
    request_.query_string = std::string(target.substr(qmark + 1));
  if (!PercentDecode(raw_path, /*plus_as_space=*/false, &request_.path)) {
    Fail(400, "malformed percent-encoding in request path");
    return false;
  }
  return true;
}

bool HttpRequestParser::ParseHeaderLine(std::string_view line) {
  if (line[0] == ' ' || line[0] == '\t') {
    // Obsolete line folding (RFC 9112 §5.2): reject rather than guess.
    Fail(400, "obsolete header line folding");
    return false;
  }
  size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    Fail(400, "header line missing ':'");
    return false;
  }
  std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) {
    // Catches both empty names and the security-relevant "Name :" form
    // (whitespace before the colon smuggles headers past some proxies).
    Fail(400, "malformed header field name");
    return false;
  }
  std::string_view value = TrimString(line.substr(colon + 1));
  request_.headers.push_back({std::string(name), std::string(value)});
  return true;
}

bool HttpRequestParser::FinishHeaders() {
  const std::string* te = request_.FindHeader("Transfer-Encoding");
  const std::string* cl = nullptr;
  for (const HttpHeader& h : request_.headers) {
    if (!AsciiEqualsIgnoreCase(h.name, "Content-Length")) continue;
    if (cl != nullptr && *cl != h.value) {
      Fail(400, "conflicting Content-Length headers");
      return false;
    }
    cl = &h.value;
  }
  if (te != nullptr) {
    if (!AsciiEqualsIgnoreCase(TrimString(*te), "chunked")) {
      Fail(501, "unsupported Transfer-Encoding");
      return false;
    }
    if (cl != nullptr) {
      // Request smuggling vector (RFC 9112 §6.1): never reconcile.
      Fail(400, "both Transfer-Encoding and Content-Length present");
      return false;
    }
    body_chunked_ = true;
  } else if (cl != nullptr) {
    if (cl->empty() ||
        !std::all_of(cl->begin(), cl->end(),
                     [](char c) { return c >= '0' && c <= '9'; }) ||
        cl->size() > 15) {
      Fail(400, "malformed Content-Length");
      return false;
    }
    uint64_t length = std::strtoull(cl->c_str(), nullptr, 10);
    if (length > limits_.max_body_bytes) {
      Fail(413, "request body exceeds limit");
      return false;
    }
    body_expected_ = static_cast<size_t>(length);
  }

  if (const std::string* conn = request_.FindHeader("Connection")) {
    for (std::string& token : SplitString(*conn, ',')) {
      std::string_view t = TrimString(token);
      if (AsciiEqualsIgnoreCase(t, "close")) request_.keep_alive = false;
      if (AsciiEqualsIgnoreCase(t, "keep-alive")) request_.keep_alive = true;
    }
  }

  if (body_chunked_) {
    phase_ = Phase::kChunkSize;
  } else if (body_expected_ > 0) {
    request_.body.reserve(body_expected_);
    phase_ = Phase::kBody;
  } else {
    phase_ = Phase::kDone;
  }
  return true;
}

bool PercentDecode(std::string_view in, bool plus_as_space, std::string* out) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size()) return false;
      int hi = HexValue(in[i + 1]);
      int lo = HexValue(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out->push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else if (c == '+' && plus_as_space) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  return true;
}

bool ParseFormUrlEncoded(
    std::string_view in,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  size_t start = 0;
  while (start <= in.size()) {
    size_t amp = in.find('&', start);
    std::string_view pair = in.substr(
        start, amp == std::string_view::npos ? std::string_view::npos
                                             : amp - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      std::string_view raw_key = pair.substr(0, eq);
      std::string_view raw_value =
          eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1);
      std::string key, value;
      if (!PercentDecode(raw_key, /*plus_as_space=*/true, &key)) return false;
      if (!PercentDecode(raw_value, /*plus_as_space=*/true, &value))
        return false;
      out->emplace_back(std::move(key), std::move(value));
    }
    if (amp == std::string_view::npos) break;
    start = amp + 1;
  }
  return true;
}

std::string MediaTypeOf(std::string_view content_type) {
  size_t semi = content_type.find(';');
  return AsciiLower(TrimString(content_type.substr(0, semi)));
}

bool NegotiateResultFormat(std::string_view accept, WireFormat* format_out) {
  if (TrimString(accept).empty()) {
    if (format_out != nullptr) *format_out = WireFormat::kJson;
    return true;
  }
  // Best (q, specificity) seen per format. Specificity: exact type 3,
  // type wildcard 2, full wildcard 1.
  double json_q = -1.0, tsv_q = -1.0, nt_q = -1.0;
  int json_spec = 0, tsv_spec = 0, nt_spec = 0;
  for (const std::string& entry : SplitString(accept, ',')) {
    std::vector<std::string> parts = SplitString(entry, ';');
    if (parts.empty()) continue;
    std::string media = AsciiLower(TrimString(parts[0]));
    double q = 1.0;
    for (size_t i = 1; i < parts.size(); ++i) {
      std::string_view param = TrimString(parts[i]);
      if (param.size() >= 2 &&
          (param[0] == 'q' || param[0] == 'Q') && param[1] == '=') {
        q = std::atof(std::string(param.substr(2)).c_str());
      }
    }
    int json_match = 0, tsv_match = 0, nt_match = 0;
    if (media == "application/sparql-results+json" ||
        media == "application/json") {
      json_match = 3;
    } else if (media == "application/*") {
      json_match = 2;
    }
    if (media == "text/tab-separated-values") {
      tsv_match = 3;
    } else if (media == "text/*") {
      tsv_match = 2;
    }
    // N-Triples must be requested exactly: wildcards never select the
    // statements-only CONSTRUCT format over a bindings format.
    if (media == "application/n-triples") nt_match = 3;
    if (media == "*/*") {
      json_match = 1;
      tsv_match = 1;
    }
    if (json_match > 0 &&
        (q > json_q || (q == json_q && json_match > json_spec))) {
      json_q = q;
      json_spec = json_match;
    }
    if (tsv_match > 0 && (q > tsv_q || (q == tsv_q && tsv_match > tsv_spec))) {
      tsv_q = q;
      tsv_spec = tsv_match;
    }
    if (nt_match > 0 && (q > nt_q || (q == nt_q && nt_match > nt_spec))) {
      nt_q = q;
      nt_spec = nt_match;
    }
  }
  // Highest q wins; specificity breaks q ties; listing order (JSON, TSV,
  // N-Triples) breaks exact ties.
  struct Candidate {
    double q;
    int spec;
    WireFormat format;
  };
  const Candidate candidates[] = {
      {json_q, json_spec, WireFormat::kJson},
      {tsv_q, tsv_spec, WireFormat::kTsv},
      {nt_q, nt_spec, WireFormat::kNTriples},
  };
  const Candidate* best = nullptr;
  for (const Candidate& c : candidates) {
    if (c.q <= 0.0) continue;
    if (best == nullptr || c.q > best->q ||
        (c.q == best->q && c.spec > best->spec))
      best = &c;
  }
  if (best == nullptr) return false;
  if (format_out != nullptr) *format_out = best->format;
  return true;
}

}  // namespace sparqluo
