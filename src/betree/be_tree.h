// BGP-based Evaluation Tree (Definition 8).
//
// Node types:
//   kGroup    — group graph pattern node; children evaluated left-to-right,
//               joined by implicit AND (Algorithm 1).
//   kBgp      — leaf holding a maximal BGP.
//   kUnion    — 2+ group children, results combined with ∪_bag.
//   kOptional — exactly 1 group child, left-outer-joined into the running
//               result.
//   kFilter   — retained from the query for semantic completeness; applied
//               to the running result when encountered. Filters are opaque
//               to the merge/inject transformations.
//   kPath     — leaf holding a `*`/`+` property-path closure, evaluated by
//               iterative reachability (src/engine/path_eval) and joined
//               into the running result like a BGP. Opaque to the
//               merge/inject transformations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bgp/bgp.h"
#include "sparql/ast.h"
#include "util/status.h"

namespace sparqluo {

struct BeNode {
  enum class Type { kGroup, kBgp, kUnion, kOptional, kFilter, kPath };

  Type type = Type::kGroup;
  Bgp bgp;            ///< kBgp payload.
  FilterExpr filter;  ///< kFilter payload.
  PathPattern path;   ///< kPath payload.
  std::vector<std::unique_ptr<BeNode>> children;

  explicit BeNode(Type t) : type(t) {}

  bool is_group() const { return type == Type::kGroup; }
  bool is_bgp() const { return type == Type::kBgp; }
  bool is_union() const { return type == Type::kUnion; }
  bool is_optional() const { return type == Type::kOptional; }
  bool is_filter() const { return type == Type::kFilter; }
  bool is_path() const { return type == Type::kPath; }

  /// Deep copy.
  std::unique_ptr<BeNode> Clone() const;

  /// All variables that can be bound under this node.
  void CollectVariables(std::vector<VarId>* out) const;
};

/// A BE-tree: the plan representation for one SPARQL-UO query. The root is
/// always a group node representing the outermost group graph pattern.
struct BeTree {
  std::unique_ptr<BeNode> root;

  BeTree() : root(std::make_unique<BeNode>(BeNode::Type::kGroup)) {}
  explicit BeTree(std::unique_ptr<BeNode> r) : root(std::move(r)) {}

  BeTree Clone() const { return BeTree(root->Clone()); }

  /// Checks the structural invariants of Definition 8: the root is a group
  /// node; UNION nodes have >= 2 children, all groups; OPTIONAL nodes have
  /// exactly one group child; BGP/FILTER nodes are leaves.
  Status Validate() const;

  /// Count_BGP(Q): number of BGP leaves.
  size_t CountBgp() const;

  /// Depth(Q): maximum nesting depth of group graph pattern nodes
  /// (the root group counts as 1).
  size_t Depth() const;
};

/// Debug rendering of the tree structure with BGP contents.
std::string DebugString(const BeTree& tree, const VarTable& vars);

}  // namespace sparqluo
