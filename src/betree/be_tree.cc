#include "betree/be_tree.h"

#include <algorithm>
#include <functional>

namespace sparqluo {

std::unique_ptr<BeNode> BeNode::Clone() const {
  auto copy = std::make_unique<BeNode>(type);
  copy->bgp = bgp;
  copy->filter = filter;
  copy->path = path;
  copy->children.reserve(children.size());
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

void BeNode::CollectVariables(std::vector<VarId>* out) const {
  auto add = [out](VarId v) {
    if (std::find(out->begin(), out->end(), v) == out->end()) out->push_back(v);
  };
  if (is_bgp()) {
    for (VarId v : bgp.Variables()) add(v);
    return;
  }
  if (is_path()) {
    if (path.subject.is_var) add(path.subject.var);
    if (path.object.is_var) add(path.object.var);
    return;
  }
  for (const auto& c : children) c->CollectVariables(out);
}

namespace {

Status ValidateNode(const BeNode& node, bool is_root) {
  switch (node.type) {
    case BeNode::Type::kGroup:
      for (const auto& c : node.children) {
        SPARQLUO_RETURN_NOT_OK(ValidateNode(*c, false));
      }
      return Status::OK();
    case BeNode::Type::kBgp:
      if (is_root) return Status::Internal("BE-tree root must be a group node");
      if (!node.children.empty())
        return Status::Internal("BGP node must be a leaf");
      return Status::OK();
    case BeNode::Type::kUnion:
      if (is_root) return Status::Internal("BE-tree root must be a group node");
      if (node.children.size() < 2)
        return Status::Internal("UNION node must have >= 2 children");
      for (const auto& c : node.children) {
        if (!c->is_group())
          return Status::Internal("UNION children must be group nodes");
        SPARQLUO_RETURN_NOT_OK(ValidateNode(*c, false));
      }
      return Status::OK();
    case BeNode::Type::kOptional:
      if (is_root) return Status::Internal("BE-tree root must be a group node");
      if (node.children.size() != 1)
        return Status::Internal("OPTIONAL node must have exactly 1 child");
      if (!node.children[0]->is_group())
        return Status::Internal("OPTIONAL child must be a group node");
      return ValidateNode(*node.children[0], false);
    case BeNode::Type::kFilter:
      if (is_root) return Status::Internal("BE-tree root must be a group node");
      if (!node.children.empty())
        return Status::Internal("FILTER node must be a leaf");
      return Status::OK();
    case BeNode::Type::kPath:
      if (is_root) return Status::Internal("BE-tree root must be a group node");
      if (!node.children.empty())
        return Status::Internal("PATH node must be a leaf");
      return Status::OK();
  }
  return Status::Internal("unknown node type");
}

}  // namespace

Status BeTree::Validate() const {
  if (!root) return Status::Internal("BE-tree has no root");
  if (!root->is_group()) return Status::Internal("root must be a group node");
  return ValidateNode(*root, true);
}

size_t BeTree::CountBgp() const {
  size_t n = 0;
  std::function<void(const BeNode&)> walk = [&](const BeNode& node) {
    if (node.is_bgp() && !node.bgp.empty()) ++n;
    for (const auto& c : node.children) walk(*c);
  };
  walk(*root);
  return n;
}

size_t BeTree::Depth() const {
  std::function<size_t(const BeNode&)> walk = [&](const BeNode& node) -> size_t {
    size_t best = 0;
    for (const auto& c : node.children) best = std::max(best, walk(*c));
    return best + (node.is_group() ? 1 : 0);
  };
  return walk(*root);
}

namespace {

void Render(const BeNode& node, const VarTable& vars, int indent,
            std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (node.type) {
    case BeNode::Type::kGroup: *out += pad + "Group\n"; break;
    case BeNode::Type::kBgp:
      *out += pad + "BGP { " + node.bgp.ToString(vars) + " }\n";
      break;
    case BeNode::Type::kUnion: *out += pad + "UNION\n"; break;
    case BeNode::Type::kOptional: *out += pad + "OPTIONAL\n"; break;
    case BeNode::Type::kFilter: *out += pad + "FILTER\n"; break;
    case BeNode::Type::kPath: {
      auto slot = [&vars](const PatternSlot& s) {
        return s.is_var ? "?" + vars.Name(s.var) : s.term.ToString();
      };
      *out += pad + "PATH " + slot(node.path.subject) + " " +
              slot(node.path.object) + "\n";
      break;
    }
  }
  for (const auto& c : node.children) Render(*c, vars, indent + 1, out);
}

}  // namespace

std::string DebugString(const BeTree& tree, const VarTable& vars) {
  std::string out;
  Render(*tree.root, vars, 0, &out);
  return out;
}

}  // namespace sparqluo
