#include "betree/builder.h"

#include <numeric>

namespace sparqluo {

namespace {

/// Union-find over triple-pattern element indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

std::unique_ptr<BeNode> BuildGroup(const GroupGraphPattern& pattern);

std::unique_ptr<BeNode> BuildElement(const PatternElement& e) {
  switch (e.kind) {
    case PatternElement::Kind::kGroup:
      return BuildGroup(e.groups[0]);
    case PatternElement::Kind::kUnion: {
      auto node = std::make_unique<BeNode>(BeNode::Type::kUnion);
      for (const GroupGraphPattern& g : e.groups)
        node->children.push_back(BuildGroup(g));
      return node;
    }
    case PatternElement::Kind::kOptional: {
      auto node = std::make_unique<BeNode>(BeNode::Type::kOptional);
      node->children.push_back(BuildGroup(e.groups[0]));
      return node;
    }
    case PatternElement::Kind::kFilter: {
      auto node = std::make_unique<BeNode>(BeNode::Type::kFilter);
      node->filter = e.filter;
      return node;
    }
    case PatternElement::Kind::kPath: {
      auto node = std::make_unique<BeNode>(BeNode::Type::kPath);
      node->path = e.path;
      return node;
    }
    case PatternElement::Kind::kTriple:
      break;  // handled by the caller's coalescing pass
  }
  return nullptr;
}

std::unique_ptr<BeNode> BuildGroup(const GroupGraphPattern& pattern) {
  auto group = std::make_unique<BeNode>(BeNode::Type::kGroup);
  const auto& elems = pattern.elements;

  // Coalesce sibling triple patterns into maximal BGPs: connected
  // components of the pairwise coalescability relation.
  std::vector<size_t> triple_idx;
  for (size_t i = 0; i < elems.size(); ++i)
    if (elems[i].kind == PatternElement::Kind::kTriple) triple_idx.push_back(i);

  UnionFind uf(triple_idx.size());
  for (size_t a = 0; a < triple_idx.size(); ++a)
    for (size_t b = a + 1; b < triple_idx.size(); ++b)
      if (Coalescable(elems[triple_idx[a]].triple, elems[triple_idx[b]].triple))
        uf.Union(a, b);

  // Leader = leftmost member of each component; the BGP node sits there.
  std::vector<size_t> leader_of(elems.size(), SIZE_MAX);
  std::vector<Bgp> bgp_at(elems.size());
  for (size_t a = 0; a < triple_idx.size(); ++a) {
    size_t root = uf.Find(a);
    // Leftmost member of the component has the smallest element index; since
    // we iterate a ascending, the first time we see `root` fixes the leader.
    size_t leader = SIZE_MAX;
    for (size_t b = 0; b <= a; ++b) {
      if (uf.Find(b) == root) {
        leader = triple_idx[b];
        break;
      }
    }
    leader_of[triple_idx[a]] = leader;
    bgp_at[leader].triples.push_back(elems[triple_idx[a]].triple);
  }

  for (size_t i = 0; i < elems.size(); ++i) {
    if (elems[i].kind == PatternElement::Kind::kTriple) {
      if (leader_of[i] == i) {
        auto node = std::make_unique<BeNode>(BeNode::Type::kBgp);
        node->bgp = std::move(bgp_at[i]);
        group->children.push_back(std::move(node));
      }
      continue;
    }
    group->children.push_back(BuildElement(elems[i]));
  }
  return group;
}

}  // namespace

BeTree BuildBeTree(const GroupGraphPattern& pattern) {
  return BeTree(BuildGroup(pattern));
}

}  // namespace sparqluo
