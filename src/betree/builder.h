// BE-tree construction from a parsed query (Section 4.1).
//
// Sibling triple patterns are coalesced into maximal BGP nodes: the
// connected components of the coalescability relation (Definitions 3-5).
// Each BGP node is placed where its leftmost constituent triple pattern
// originally resided, preserving the one-to-one query <-> BE-tree mapping.
#pragma once

#include "betree/be_tree.h"
#include "sparql/ast.h"

namespace sparqluo {

/// Builds the BE-tree of a group graph pattern.
BeTree BuildBeTree(const GroupGraphPattern& pattern);

/// Builds the BE-tree of a query's WHERE clause.
inline BeTree BuildBeTree(const Query& query) {
  return BuildBeTree(query.where);
}

}  // namespace sparqluo
