#include "betree/serializer.h"

namespace sparqluo {

namespace {

void RenderTerm(const PatternSlot& slot, const VarTable& vars,
                std::string* out) {
  if (slot.is_var) {
    *out += "?" + vars.Name(slot.var);
  } else {
    *out += slot.term.ToString();
  }
}

void RenderBgp(const Bgp& bgp, const VarTable& vars, const std::string& pad,
               std::string* out) {
  for (const TriplePattern& t : bgp.triples) {
    *out += pad;
    RenderTerm(t.s, vars, out);
    *out += " ";
    RenderTerm(t.p, vars, out);
    *out += " ";
    RenderTerm(t.o, vars, out);
    *out += " .\n";
  }
}

void RenderNode(const BeNode& node, const VarTable& vars, int indent,
                std::string* out);

void RenderGroup(const BeNode& group, const VarTable& vars, int indent,
                 std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  *out += "{\n";
  for (const auto& c : group.children) RenderNode(*c, vars, indent + 1, out);
  *out += pad + "}";
}

void RenderNode(const BeNode& node, const VarTable& vars, int indent,
                std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (node.type) {
    case BeNode::Type::kBgp:
      RenderBgp(node.bgp, vars, pad, out);
      break;
    case BeNode::Type::kGroup:
      *out += pad;
      RenderGroup(node, vars, indent, out);
      *out += "\n";
      break;
    case BeNode::Type::kUnion: {
      for (size_t i = 0; i < node.children.size(); ++i) {
        *out += pad;
        if (i > 0) *out += "UNION ";
        RenderGroup(*node.children[i], vars, indent, out);
        *out += "\n";
      }
      break;
    }
    case BeNode::Type::kOptional:
      *out += pad + "OPTIONAL ";
      RenderGroup(*node.children[0], vars, indent, out);
      *out += "\n";
      break;
    case BeNode::Type::kFilter: {
      // Re-use the AST printer by wrapping into a one-element group pattern.
      GroupGraphPattern g;
      PatternElement e;
      e.kind = PatternElement::Kind::kFilter;
      e.filter = node.filter;
      g.elements.push_back(std::move(e));
      std::string body = ToString(g, vars, indent);
      // Strip the outer braces the group printer adds.
      size_t open = body.find('\n');
      size_t close = body.rfind('}');
      if (open != std::string::npos && close != std::string::npos)
        *out += body.substr(open + 1, close - open - 1);
      break;
    }
    case BeNode::Type::kPath: {
      GroupGraphPattern g;
      PatternElement e;
      e.kind = PatternElement::Kind::kPath;
      e.path = node.path;
      g.elements.push_back(std::move(e));
      std::string body = ToString(g, vars, indent);
      size_t open = body.find('\n');
      size_t close = body.rfind('}');
      if (open != std::string::npos && close != std::string::npos)
        *out += body.substr(open + 1, close - open - 1);
      break;
    }
  }
}

}  // namespace

std::string SerializeToSparql(const BeTree& tree, const VarTable& vars) {
  std::string out;
  RenderGroup(*tree.root, vars, 0, &out);
  return out;
}

std::string SerializeToQuery(const BeTree& tree, const VarTable& vars) {
  return "SELECT * WHERE " + SerializeToSparql(tree, vars);
}

}  // namespace sparqluo
