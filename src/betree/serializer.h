// BE-tree -> SPARQL surface syntax (the inverse of betree/builder.h).
//
// Together with the builder this realizes the one-to-one mapping between
// BE-trees and syntactically valid SPARQL queries that the transformation
// validity goal (Section 4.2.1) requires.
#pragma once

#include <string>

#include "betree/be_tree.h"
#include "sparql/ast.h"

namespace sparqluo {

/// Serializes the tree to the body of a WHERE clause (a brace-enclosed
/// group graph pattern).
std::string SerializeToSparql(const BeTree& tree, const VarTable& vars);

/// Serializes to a full `SELECT * WHERE { ... }` query string.
std::string SerializeToQuery(const BeTree& tree, const VarTable& vars);

}  // namespace sparqluo
