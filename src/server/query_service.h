// Concurrent query service over a finalized Database.
//
// After Database::Finalize() the read path is a chain of immutable
// DatabaseVersions (src/store/versioned_store.h): every query pins the
// current version for its whole execution, so queries run in parallel
// without any locking on the data — and, when the service is constructed
// over a mutable Database, SubmitUpdate() applies INSERT DATA/DELETE DATA
// batches whose commits publish new versions without ever disturbing
// in-flight readers. This service adds the traffic-facing machinery on
// top:
//
//   - a shared ExecutorPool (util/executor_pool.h) serving both whole-query
//     tasks and the morsel batches of intra-query parallel BGP evaluation,
//     so inter- and intra-query work share one set of workers; admission
//     control rejects submissions beyond pool size + max_queue in flight
//     with ResourceExhausted,
//   - per-query deadlines and explicit cancellation, enforced through the
//     executor's cooperative CancelToken checkpoints (each morsel polls the
//     same token),
//   - a sharded LRU plan cache keyed by normalized query text *and the
//     database version*, so repeated queries skip parsing and tree
//     transformation entirely while commits implicitly invalidate every
//     cached plan (after each commit, eviction is version-scoped: entries
//     for the new current version or a version an in-flight request still
//     pins survive, every unreachable entry is dropped),
//   - a byte-budgeted result cache (server/result_cache.h) one level up:
//     repeat queries against an unchanged version are served their full
//     finished rows without touching the engines, invalidated by the same
//     post-commit version-reachability sweep as the plan cache — both run
//     from one InvalidateCaches hook registered as a store commit
//     listener, so every published version sweeps both caches no matter
//     which code path committed it,
//   - in-flight dedup: a submission identical to one already executing
//     (same normalized text, options and pinned version) waits on the
//     leader's shared future instead of executing; the follower's
//     deadline/cancellation never touches the leader, and a failed leader
//     makes followers execute for themselves — errors are never shared,
//   - serialized, admission-controlled updates (SubmitUpdate) that report
//     per-commit stats into the service counters,
//   - thread-safe aggregation of per-query ExecMetrics/BgpEvalCounters into
//     service-level counters (QPS, p50/p99 latency, cache hit rate, aborts,
//     morsel counts).
//
// The same freeze-then-serve organization RDF-3x-style stores use: load,
// Finalize, then serve reads from arbitrarily many threads.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "engine/database.h"
#include "server/plan_cache.h"
#include "server/result_cache.h"
#include "server/service_stats.h"
#include "util/executor_pool.h"

namespace sparqluo {

struct QueryResponse;

/// One query submission.
struct QueryRequest {
  std::string text;
  ExecOptions options = ExecOptions::Full();
  /// Per-request deadline measured from submission; <= 0 means the service
  /// default (QueryService::Options::default_deadline), itself <= 0 for
  /// "no deadline".
  std::chrono::milliseconds deadline{0};
  /// Optional externally-owned cancellation token. When set, the service
  /// installs the effective deadline on it and evaluation polls it, so the
  /// caller can abort the request mid-flight with RequestCancel().
  std::shared_ptr<CancelToken> cancel;
  /// When true (default), a request leaving options.parallel.parallelism
  /// at 1 inherits the service-wide intra_query_parallelism. Set to false
  /// to take the request's value literally — in particular, 1 then forces
  /// sequential evaluation for this request.
  bool inherit_parallelism = true;
  /// Per-request trace opt-in: when set, the whole lifecycle (queue wait,
  /// plan-cache lookup, parse, plan/transform, eval down to morsels,
  /// serialize) is recorded into this context and echoed back on the
  /// response. Null (and Options::trace_queries false) means no tracing —
  /// the request pays only null-pointer checks.
  std::shared_ptr<TraceContext> trace;
  /// Completion hook for push-style consumers (the HTTP endpoint streams
  /// the response body from here instead of blocking a thread on the
  /// future). Runs on the worker that finished the request — or inline on
  /// the submitting thread when admission rejects — after stats are
  /// recorded and just before the future resolves. The response is passed
  /// by reference; the hook may read it but the future still receives the
  /// full (moved-from-here-afterwards) value. Exceptions thrown by the
  /// hook are swallowed (a worker must never unwind).
  std::function<void(const QueryResponse&)> on_complete;
};

/// Outcome of one query.
struct QueryResponse {
  Status status;            ///< OK, or why the query failed/was cut short.
  BindingSet rows;          ///< Valid when status.ok().
  ExecMetrics metrics;
  bool plan_cache_hit = false;
  /// Rows served straight from the result cache — no parsing, planning or
  /// engine work happened on this request (metrics are all zero).
  bool result_cache_hit = false;
  /// Rows copied from an identical in-flight leader request instead of
  /// executing (in-flight dedup). Like a result-cache hit, metrics stay
  /// zero: the engine work was the leader's, already recorded there.
  bool deduped = false;
  double total_ms = 0.0;    ///< Queue wait + parse/plan + execution.
  uint64_t version = 0;     ///< Database version the query executed on.
  /// The request's trace (or the service-created one when
  /// Options::trace_queries is set); null when the query was not traced.
  std::shared_ptr<TraceContext> trace;
  /// The executed plan (cache hit or freshly built): carries the parsed
  /// Query — its VarTable and form — which serializers need to render
  /// `rows`. Null when the request failed before a plan existed (parse
  /// error, admission rejection).
  std::shared_ptr<const CachedPlan> plan;
};

/// Outcome of one update.
struct UpdateResponse {
  Status status;        ///< OK once the batch is durably committed.
  CommitStats commit;   ///< Valid when status.ok().
  double total_ms = 0.0;
};

/// One update submission: SPARQL INSERT DATA / DELETE DATA text, or a
/// pre-built batch (used when `text` is empty).
struct UpdateRequest {
  std::string text;
  UpdateBatch batch;
  /// Same contract as QueryRequest::on_complete.
  std::function<void(const UpdateResponse&)> on_complete;
};

class QueryService {
 public:
  struct Options {
    /// Worker threads when the service creates its own pool (the in-flight
    /// bound). 0 = hardware concurrency. Ignored when `pool` is set.
    size_t num_threads = 0;
    /// Pending submissions beyond the in-flight bound; submissions past
    /// this are rejected immediately (admission control).
    size_t max_queue = 1024;
    bool enable_plan_cache = true;
    size_t plan_cache_capacity = 512;
    size_t plan_cache_shards = 8;
    /// Result cache: successful responses keyed by (normalized text,
    /// plan-relevant options, database version) are served without
    /// touching the engines. Invalidated by the same post-commit
    /// version-reachability sweep as the plan cache (InvalidateCaches).
    bool enable_result_cache = true;
    /// Total result-cache payload budget in bytes, split across shards.
    size_t result_cache_bytes = 64ull << 20;
    size_t result_cache_shards = 8;
    /// In-flight dedup: a submission whose cache key matches one already
    /// executing waits on the leader's result instead of executing. The
    /// follower's deadline/cancellation applies only to its own wait (it
    /// never cancels the leader), and a failed leader makes followers
    /// execute for themselves — errors are never shared or cached.
    bool enable_dedup = true;
    /// Applied to requests that do not set their own deadline; <= 0 means
    /// unbounded.
    std::chrono::milliseconds default_deadline{0};
    /// Intra-query parallelism applied to requests that leave
    /// ExecOptions::parallel.parallelism at its default of 1 (0 = pool
    /// size + 1).
    /// Morsels run on the same pool as the queries themselves.
    size_t intra_query_parallelism = 1;
    /// Shared worker pool; null makes the service own a fresh pool with
    /// `num_threads` workers. Passing one pool to several services (or to
    /// standalone executors) keeps all work on one set of workers.
    std::shared_ptr<ExecutorPool> pool;
    /// When false, the service records nothing into its latency histogram
    /// or the process-global MetricRegistry (plain counters in Stats()
    /// still work). The bench_throughput overhead gate uses this as the
    /// no-observability baseline.
    bool enable_metrics = true;
    /// Trace every query (requests without their own TraceContext get a
    /// service-created one, returned on the response). Off by default:
    /// tracing is per-request opt-in via QueryRequest::trace.
    bool trace_queries = false;
    /// Span cap for service-created trace contexts.
    size_t trace_max_spans = TraceContext::kDefaultMaxSpans;
    /// Slow-query log: a finished query whose end-to-end latency reaches
    /// this threshold is counted and (subject to sampling) logged at WARN
    /// with its text and timings. <= 0 disables.
    double slow_query_ms = 0.0;
    /// Log every Nth slow query (1 = all). The counter is service-wide, so
    /// under sustained slowness the log rate is 1/N of the slow rate.
    size_t slow_query_sample = 1;
  };

  /// Read-only service: `db` must be finalized and must outlive the
  /// service. SubmitUpdate() fails with FailedPrecondition.
  QueryService(const Database& db, Options options);

  /// Updatable service: additionally accepts SubmitUpdate(). Writers are
  /// serialized by the database's versioned store; queries keep running
  /// against their pinned version while commits publish new ones.
  QueryService(Database& db, Options options);

  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one query. The future resolves when the query finishes;
  /// rejected submissions resolve immediately with ResourceExhausted.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Blocking batch API: submits everything, waits, returns responses in
  /// submission order.
  std::vector<QueryResponse> RunBatch(std::vector<QueryRequest> requests);

  /// Submits one update batch. Updates share the worker pool and the
  /// admission bound with queries; commits are serialized against each
  /// other by the versioned store's writer lock. After a successful commit
  /// the plan cache drops every entry no reader can reach (neither the
  /// new current version nor one an in-flight request still pins) —
  /// plans for pinned older versions stay hittable until their last
  /// reader finishes. Requires the updatable constructor.
  std::future<UpdateResponse> SubmitUpdate(UpdateRequest request);

  /// Stops accepting new work and waits for all in-flight queries to
  /// finish. Idempotent; also run by the destructor. A service-owned pool
  /// is shut down too; a shared pool keeps serving its other users.
  void Shutdown();

  ServiceStatsSnapshot Stats() const { return stats_.Snapshot(); }
  PlanCache::Stats CacheStats() const { return cache_.GetStats(); }
  ResultCache::Stats ResultCacheStats() const {
    return result_cache_.GetStats();
  }
  size_t num_threads() const { return pool_->num_threads(); }
  const std::shared_ptr<ExecutorPool>& pool() const { return pool_; }

 private:
  struct Task {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  /// RAII pin of the current database version for one in-flight request:
  /// snapshots and registers the version in pinned_versions_ (the floor
  /// for version-scoped cache eviction) under one mu_ critical section,
  /// so a commit can never land between the snapshot read and the
  /// registration and evict the just-snapshotted version's plans.
  class VersionPin {
   public:
    /// Fills `*snap` with the pinned snapshot (never null).
    VersionPin(QueryService* service,
               std::shared_ptr<const DatabaseVersion>* snap);
    ~VersionPin();

    VersionPin(const VersionPin&) = delete;
    VersionPin& operator=(const VersionPin&) = delete;

   private:
    QueryService* service_;
    uint64_t version_;
  };

  /// One in-flight leader execution that identical submissions wait on.
  /// The future resolves to the leader's successful result — shared with
  /// the result cache's entry type, so publishing costs one rows copy —
  /// or to null when the leader failed (followers then execute for
  /// themselves rather than inherit the error).
  struct InflightQuery {
    std::promise<std::shared_ptr<const CachedResult>> promise;
    std::shared_future<std::shared_ptr<const CachedResult>> future;
    /// Followers currently (or ever) waiting; lets the leader count
    /// dedup fan-in without a map scan.
    std::atomic<uint64_t> waiters{0};
  };

  QueryResponse Process(Task& task);
  UpdateResponse ProcessUpdate(const UpdateRequest& request);

  /// Returns false (and resolves `reject` into the promise-completion
  /// callback) when the request cannot be admitted. Shared by Submit and
  /// SubmitUpdate.
  bool Admit(Status* reject);

  /// Post-commit sweep over both caches: drops every plan-cache and
  /// result-cache entry whose version is neither `current_version` nor
  /// pinned by an in-flight request. Runs unconditionally — registered as
  /// a VersionedStore commit listener, so it fires for every published
  /// version whichever path committed it (this service's SubmitUpdate, a
  /// sibling service sharing the database, or Database::Apply directly),
  /// and regardless of which caches are enabled.
  void InvalidateCaches(uint64_t current_version);

  /// Recomputes both pin gauges from pinned_versions_. Caller holds mu_.
  void UpdatePinnedGaugesLocked();

  const Database& db_;
  Database* updatable_db_ = nullptr;  ///< Null for read-only services.
  Options options_;
  PlanCache cache_;
  ResultCache result_cache_;
  ServiceStats stats_;
  /// Slow queries seen so far; drives every-Nth log sampling.
  std::atomic<uint64_t> slow_seen_{0};
  /// Distinct versions currently pinned by in-flight requests
  /// (obs/metrics.h); null when Options::enable_metrics is false. N
  /// requests pinning one version count as one pinned version here;
  /// pinned_requests_gauge_ carries the total pin count.
  Gauge* pinned_gauge_ = nullptr;
  Gauge* pinned_requests_gauge_ = nullptr;
  Counter* dedup_leaders_metric_ = nullptr;
  /// Token for the registered commit listener (InvalidateCaches).
  uint64_t commit_listener_ = 0;

  std::shared_ptr<ExecutorPool> pool_;
  bool owns_pool_ = false;

  std::mutex mu_;
  std::condition_variable cv_;   ///< Signalled when in_flight_ hits zero.
  size_t in_flight_ = 0;         ///< Submitted to the pool, not yet finished.
  bool shutdown_ = false;
  /// Versions pinned by in-flight queries; the minimum is the eviction
  /// floor after commits. Guarded by mu_.
  std::multiset<uint64_t> pinned_versions_;

  /// In-flight dedup table: cache key -> the leader execution identical
  /// submissions wait on. Its own mutex (not mu_): followers take it on
  /// the hot path while commits hold mu_ for pin collection.
  std::mutex inflight_mu_;
  std::unordered_map<std::string, std::shared_ptr<InflightQuery>> inflight_;
};

}  // namespace sparqluo
