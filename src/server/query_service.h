// Concurrent query service over a finalized Database.
//
// After Database::Finalize() every structure on the read path — TripleStore,
// Dictionary, Statistics, the BGP engine and the Executor — is immutable,
// so queries can execute in parallel without any locking on the data. This
// service adds the traffic-facing machinery on top:
//
//   - a fixed worker thread pool consuming a bounded submission queue
//     (admission control: max in-flight = pool size, plus max_queue pending;
//     submissions beyond that are rejected with ResourceExhausted),
//   - per-query deadlines and explicit cancellation, enforced through the
//     executor's cooperative CancelToken checkpoints,
//   - a sharded LRU plan cache keyed by normalized query text, so repeated
//     queries skip parsing and tree transformation entirely,
//   - thread-safe aggregation of per-query ExecMetrics/BgpEvalCounters into
//     service-level counters (QPS, p50/p99 latency, cache hit rate, aborts).
//
// The same freeze-then-serve organization RDF-3x-style stores use: load,
// Finalize, then serve reads from arbitrarily many threads.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/plan_cache.h"
#include "server/service_stats.h"

namespace sparqluo {

/// One query submission.
struct QueryRequest {
  std::string text;
  ExecOptions options = ExecOptions::Full();
  /// Per-request deadline measured from submission; <= 0 means the service
  /// default (QueryService::Options::default_deadline), itself <= 0 for
  /// "no deadline".
  std::chrono::milliseconds deadline{0};
  /// Optional externally-owned cancellation token. When set, the service
  /// installs the effective deadline on it and evaluation polls it, so the
  /// caller can abort the request mid-flight with RequestCancel().
  std::shared_ptr<CancelToken> cancel;
};

/// Outcome of one query.
struct QueryResponse {
  Status status;            ///< OK, or why the query failed/was cut short.
  BindingSet rows;          ///< Valid when status.ok().
  ExecMetrics metrics;
  bool plan_cache_hit = false;
  double total_ms = 0.0;    ///< Queue wait + parse/plan + execution.
};

class QueryService {
 public:
  struct Options {
    /// Worker threads (the in-flight bound). 0 = hardware concurrency.
    size_t num_threads = 0;
    /// Pending submissions beyond the in-flight bound; submissions past
    /// this are rejected immediately (admission control).
    size_t max_queue = 1024;
    bool enable_plan_cache = true;
    size_t plan_cache_capacity = 512;
    size_t plan_cache_shards = 8;
    /// Applied to requests that do not set their own deadline; <= 0 means
    /// unbounded.
    std::chrono::milliseconds default_deadline{0};
  };

  /// `db` must be finalized and must outlive the service.
  QueryService(const Database& db, Options options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one query. The future resolves when the query finishes;
  /// rejected submissions resolve immediately with ResourceExhausted.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Blocking batch API: submits everything, waits, returns responses in
  /// submission order.
  std::vector<QueryResponse> RunBatch(std::vector<QueryRequest> requests);

  /// Stops accepting new work, drains the queue and joins the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  ServiceStatsSnapshot Stats() const { return stats_.Snapshot(); }
  PlanCache::Stats CacheStats() const { return cache_.GetStats(); }
  size_t num_threads() const { return workers_.size(); }

 private:
  struct Task {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  void WorkerLoop();
  QueryResponse Process(Task& task);

  const Database& db_;
  Options options_;
  PlanCache cache_;
  ServiceStats stats_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sparqluo
