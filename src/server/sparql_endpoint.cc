#include "server/sparql_endpoint.h"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace sparqluo {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Per-status-code response counter (interned in the global registry, so
/// completion hooks can record it without referencing the endpoint).
Counter* ResponseCounter(int status, bool enabled) {
  if (!enabled) return nullptr;
  return MetricRegistry::Global().GetCounter(
      "sparqluo_http_responses_total", "HTTP responses by status code",
      "code=\"" + std::to_string(status) + "\"");
}

Histogram* RequestLatencyHistogram(bool enabled) {
  if (!enabled) return nullptr;
  return MetricRegistry::Global().GetHistogram(
      "sparqluo_http_request_ms",
      "End-to-end HTTP request latency, receipt to response completion (ms)");
}

/// Maps an engine Status to the HTTP status code of the error response.
/// `metrics` (null for updates) disambiguates kResourceExhausted: an abort
/// the client caused or configured — deadline, explicit cancel — is 408,
/// while hitting the server's row-limit guard is 503 (the request was too
/// heavy for current limits; retrying a smaller one can succeed). Admission
/// rejection has its own code, kOverloaded, and is always a retryable 503
/// — never 500, which is reserved for genuine engine faults.
int HttpStatusFor(const Status& status, const ExecMetrics* metrics) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kOverloaded:
    case StatusCode::kUnavailable:  // durable-I/O failure: commit refused,
      return 503;                   // reads keep serving — retryable
    case StatusCode::kResourceExhausted:
      if (metrics != nullptr &&
          (metrics->abort_reason == AbortReason::kDeadline ||
           metrics->abort_reason == AbortReason::kCancelled)) {
        return 408;
      }
      return 503;
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnsupported:
      return 400;
    case StatusCode::kFailedPrecondition:
      return 403;  // e.g. update against a read-only service
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

/// Sends a plain-text response and counts it.
void Reply(const std::shared_ptr<HttpExchange>& exchange, int status,
           std::string body, bool metrics_enabled,
           std::vector<HttpHeader> extra_headers = {}) {
  if (Counter* c = ResponseCounter(status, metrics_enabled)) c->Increment();
  exchange->Respond(status, "text/plain; charset=utf-8", std::move(body),
                    std::move(extra_headers));
}

/// Error response for a failed engine Status (503s carry Retry-After).
void ReplyStatus(const std::shared_ptr<HttpExchange>& exchange,
                 const Status& status, const ExecMetrics* metrics,
                 int retry_after_seconds, bool metrics_enabled) {
  int http = HttpStatusFor(status, metrics);
  std::vector<HttpHeader> extra;
  if (http == 503 && retry_after_seconds > 0)
    extra.push_back({"Retry-After", std::to_string(retry_after_seconds)});
  Reply(exchange, http, status.ToString() + "\n", metrics_enabled,
        std::move(extra));
}

void ObserveLatency(SteadyClock::time_point start, bool enabled) {
  if (Histogram* h = RequestLatencyHistogram(enabled)) {
    h->Observe(std::chrono::duration<double, std::milli>(SteadyClock::now() -
                                                         start)
                   .count());
  }
}

/// Ceiling for the client-supplied `timeout` parameter. Values above this are
/// clamped rather than rejected: a huge timeout means "don't time me out",
/// and feeding it verbatim into steady_clock arithmetic can overflow the
/// deadline into the past, aborting the query instantly with a spurious 408.
constexpr std::chrono::milliseconds kMaxClientTimeout{
    std::chrono::hours(24)};

/// Parses the `timeout` parameter (non-negative integer milliseconds).
/// Well-formed values larger than kMaxClientTimeout clamp to it.
bool ParseTimeoutMs(const std::string& value, std::chrono::milliseconds* out) {
  if (value.empty()) return false;
  for (char c : value)
    if (c < '0' || c > '9') return false;
  if (value.size() > 18) {  // > 18 digits overflows int64 and the ceiling
    *out = kMaxClientTimeout;
    return true;
  }
  auto parsed = std::chrono::milliseconds(
      std::strtoll(value.c_str(), nullptr, 10));
  *out = std::min(parsed, kMaxClientTimeout);
  return true;
}

}  // namespace

SparqlEndpoint::SparqlEndpoint(QueryService& service, const Dictionary& dict,
                               Options options)
    : service_(service),
      dict_(dict),
      options_(std::move(options)),
      server_(options_.http, [this](std::shared_ptr<HttpExchange> exchange) {
        Handle(std::move(exchange));
      }) {}

SparqlEndpoint::~SparqlEndpoint() { Stop(); }

void SparqlEndpoint::Handle(std::shared_ptr<HttpExchange> exchange) {
  const HttpRequest& request = exchange->request();
  const bool metrics_on = options_.enable_metrics;
  if (request.path == "/healthz") {
    if (request.method != "GET")
      return Reply(exchange, 405, "method not allowed\n", metrics_on,
                   {{"Allow", "GET"}});
    return Reply(exchange, 200, "ok\n", metrics_on);
  }
  if (request.path == "/metrics") {
    if (request.method != "GET")
      return Reply(exchange, 405, "method not allowed\n", metrics_on,
                   {{"Allow", "GET"}});
    if (Counter* c = ResponseCounter(200, metrics_on)) c->Increment();
    return exchange->Respond(200, "text/plain; version=0.0.4; charset=utf-8",
                             MetricRegistry::Global().RenderPrometheus());
  }
  if (request.path == "/sparql") return HandleSparql(exchange);
  if (request.path == "/update") return HandleUpdate(exchange);
  Reply(exchange, 404, "no such route: " + request.path + "\n", metrics_on);
}

void SparqlEndpoint::HandleSparql(
    const std::shared_ptr<HttpExchange>& exchange) {
  const HttpRequest& request = exchange->request();
  const bool metrics_on = options_.enable_metrics;
  if (request.method != "GET" && request.method != "POST")
    return Reply(exchange, 405, "method not allowed\n", metrics_on,
                 {{"Allow", "GET, POST"}});

  // Collect parameters: always the URL query string, plus — for POST — a
  // form body, or the whole body as query text for the direct media type.
  std::vector<std::pair<std::string, std::string>> params;
  if (!ParseFormUrlEncoded(request.query_string, &params))
    return Reply(exchange, 400, "malformed percent-encoding in query string\n",
                 metrics_on);
  std::string query_text;
  bool have_query = false;
  if (request.method == "POST") {
    const std::string* ct = request.FindHeader("Content-Type");
    std::string media = MediaTypeOf(ct != nullptr ? *ct : "");
    if (media == "application/x-www-form-urlencoded") {
      std::vector<std::pair<std::string, std::string>> body_params;
      if (!ParseFormUrlEncoded(request.body, &body_params))
        return Reply(exchange, 400,
                     "malformed percent-encoding in form body\n", metrics_on);
      for (auto& kv : body_params) params.push_back(std::move(kv));
    } else if (media == "application/sparql-query") {
      query_text = request.body;
      have_query = true;
    } else {
      return Reply(exchange, 415,
                   "unsupported media type: use "
                   "application/x-www-form-urlencoded or "
                   "application/sparql-query\n",
                   metrics_on);
    }
  }
  std::chrono::milliseconds timeout{0};
  for (const auto& [key, value] : params) {
    if (key == "query") {
      query_text = value;
      have_query = true;
    } else if (key == "timeout") {
      if (!ParseTimeoutMs(value, &timeout))
        return Reply(exchange, 400,
                     "bad timeout parameter (integer milliseconds)\n",
                     metrics_on);
    }
  }
  if (!have_query || query_text.empty())
    return Reply(exchange, 400, "missing query parameter\n", metrics_on);
  if (options_.max_timeout.count() > 0 &&
      (timeout.count() == 0 || timeout > options_.max_timeout)) {
    timeout = options_.max_timeout;
  }

  const std::string* accept = request.FindHeader("Accept");
  WireFormat format = WireFormat::kJson;
  if (!NegotiateResultFormat(accept != nullptr ? *accept : "", &format))
    return Reply(exchange, 406,
                 "not acceptable: supported result formats are "
                 "application/sparql-results+json, "
                 "text/tab-separated-values and "
                 "application/n-triples (CONSTRUCT only)\n",
                 metrics_on);
  // With no Accept preference a CONSTRUCT response upgrades to N-Triples
  // (the natural triples format); the decision needs the parsed query
  // form, so it happens in the completion hook.
  const bool accept_empty =
      accept == nullptr ||
      accept->find_first_not_of(" \t") == std::string::npos;

  QueryRequest qr;
  qr.text = std::move(query_text);
  qr.deadline = timeout;
  // The completion hook runs on the worker that finished the query (or
  // inline on rejection) and must not reference the endpoint — only
  // self-contained state — since the endpoint can be torn down while a
  // query is still in flight.
  qr.on_complete = [exchange, dict = &dict_, format, accept_empty,
                    flush_bytes = options_.flush_bytes,
                    retry_after = options_.retry_after_seconds, metrics_on,
                    start = SteadyClock::now()](const QueryResponse& r) {
    ObserveLatency(start, metrics_on);
    if (!r.status.ok() || r.plan == nullptr) {
      Status status = r.status.ok()
                          ? Status::Internal("query succeeded without a plan")
                          : r.status;
      ReplyStatus(exchange, status, &r.metrics, retry_after, metrics_on);
      return;
    }
    const bool is_construct = r.plan->query.form == QueryForm::kConstruct;
    WireFormat fmt = format;
    if (accept_empty && is_construct) fmt = WireFormat::kNTriples;
    if (fmt == WireFormat::kNTriples && !is_construct) {
      Reply(exchange, 406,
            "not acceptable: application/n-triples serves CONSTRUCT "
            "results only\n",
            metrics_on);
      return;
    }
    if (Counter* c = ResponseCounter(200, metrics_on)) c->Increment();
    if (!exchange->BeginStreaming(200, WireFormatContentType(fmt))) return;
    StreamingResultWriter writer(
        fmt,
        [&exchange](std::string_view piece) { return exchange->Write(piece); },
        flush_bytes);
    if (r.plan->query.form == QueryForm::kAsk) {
      writer.WriteBoolean(!r.rows.empty());
    } else if (is_construct && fmt != WireFormat::kNTriples) {
      // CONSTRUCT in a bindings format: present the three triple columns
      // under surface names instead of the parser's hidden variables.
      VarTable names;
      std::vector<VarId> schema{names.Intern("subject"),
                                names.Intern("predicate"),
                                names.Intern("object")};
      if (writer.BeginSelect(schema, names)) {
        for (size_t i = 0; i < r.rows.size(); ++i)
          if (!writer.WriteRow(r.rows.Row(i), r.rows.width(), *dict)) break;
        writer.Finish();
      }
    } else {
      writer.WriteAll(r.rows, r.plan->query.vars, *dict);
    }
    exchange->EndStreaming();
  };
  // The future is intentionally dropped: the response flows through the
  // completion hook (including inline admission rejections).
  service_.Submit(std::move(qr));
}

void SparqlEndpoint::HandleUpdate(
    const std::shared_ptr<HttpExchange>& exchange) {
  const HttpRequest& request = exchange->request();
  const bool metrics_on = options_.enable_metrics;
  if (request.method != "POST")
    return Reply(exchange, 405, "method not allowed\n", metrics_on,
                 {{"Allow", "POST"}});
  const std::string* ct = request.FindHeader("Content-Type");
  std::string media = MediaTypeOf(ct != nullptr ? *ct : "");
  std::string update_text;
  if (media == "application/x-www-form-urlencoded") {
    std::vector<std::pair<std::string, std::string>> params;
    if (!ParseFormUrlEncoded(request.body, &params))
      return Reply(exchange, 400, "malformed percent-encoding in form body\n",
                   metrics_on);
    for (const auto& [key, value] : params)
      if (key == "update") update_text = value;
  } else if (media == "application/sparql-update") {
    update_text = request.body;
  } else {
    return Reply(exchange, 415,
                 "unsupported media type: use "
                 "application/x-www-form-urlencoded or "
                 "application/sparql-update\n",
                 metrics_on);
  }
  if (update_text.empty())
    return Reply(exchange, 400, "missing update parameter\n", metrics_on);

  UpdateRequest ur;
  ur.text = std::move(update_text);
  ur.on_complete = [exchange, retry_after = options_.retry_after_seconds,
                    metrics_on,
                    start = SteadyClock::now()](const UpdateResponse& r) {
    ObserveLatency(start, metrics_on);
    if (!r.status.ok()) {
      ReplyStatus(exchange, r.status, nullptr, retry_after, metrics_on);
      return;
    }
    Reply(exchange, 200, "ok\n", metrics_on);
  };
  service_.SubmitUpdate(std::move(ur));
}

}  // namespace sparqluo
