#include "server/plan_cache.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "obs/metrics.h"

namespace sparqluo {

PlanCache::PlanCache(size_t capacity, size_t shards) : capacity_(capacity) {
  if (shards == 0) shards = 1;
  shards = std::min(shards, std::max<size_t>(capacity, 1));
  per_shard_capacity_ = std::max<size_t>(1, (capacity + shards - 1) / shards);
  shards_.reserve(shards);
  MetricRegistry& reg = MetricRegistry::Global();
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    std::string label = "shard=\"" + std::to_string(i) + "\"";
    shard->hits_metric = reg.GetCounter(
        "sparqluo_plan_cache_hits_total", "Plan cache lookups served", label);
    shard->misses_metric = reg.GetCounter("sparqluo_plan_cache_misses_total",
                                          "Plan cache lookups missed", label);
    shard->evictions_metric =
        reg.GetCounter("sparqluo_plan_cache_evictions_total",
                       "Plan cache entries evicted", label);
    shards_.push_back(std::move(shard));
  }
}

PlanCache::Shard& PlanCache::ShardOf(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}
const PlanCache::Shard& PlanCache::ShardOf(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const CachedPlan> PlanCache::Get(const std::string& key) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    shard.misses_metric->Increment();
    return nullptr;
  }
  ++shard.hits;
  shard.hits_metric->Increment();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->plan;
}

void PlanCache::Put(const std::string& key,
                    std::shared_ptr<const CachedPlan> plan, uint64_t version) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent planners can race to insert the same key; keep the newest.
    it->second->plan = std::move(plan);
    it->second->version = version;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(plan), version});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
    shard.evictions_metric->Increment();
  }
}

void PlanCache::EvictUnreachable(
    uint64_t current_version, const std::vector<uint64_t>& pinned_versions) {
  auto reachable = [&](uint64_t version) {
    return version >= current_version ||
           std::binary_search(pinned_versions.begin(), pinned_versions.end(),
                              version);
  };
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (!reachable(it->version)) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++shard->evictions;
        shard->evictions_metric->Increment();
      } else {
        ++it;
      }
    }
  }
}

void PlanCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.clear();
    shard->lru.clear();
  }
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
  }
  return out;
}

std::string PlanCache::NormalizeQuery(const std::string& text) {
  // Mirrors the lexer's skipping rules (src/sparql/lexer.cc): `#` starts a
  // comment to end of line — but only outside string literals and outside
  // IRI refs (a `<` that closes with `>` before whitespace/quote/braces is
  // consumed as one token, so a `#` inside it is part of the IRI). Getting
  // this wrong would let queries that differ only in where a comment ends
  // (or in an IRI fragment) share a cache key and serve each other's plans.
  std::string out;
  out.reserve(text.size());
  char quote = '\0';  // inside a "..." or '...' literal when non-zero
  bool pending_space = false;
  auto emit = [&](char c) {
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  };
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (quote != '\0') {
      out.push_back(c);
      if (c == '\\' && i + 1 < text.size()) {
        out.push_back(text[++i]);
      } else if (c == quote) {
        quote = '\0';
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      emit(c);
      quote = c;
      continue;
    }
    if (c == '#') {  // comment: acts as whitespace to end of line
      while (i + 1 < text.size() && text[i + 1] != '\n') ++i;
      pending_space = true;
      continue;
    }
    if (c == '<') {
      // IRI ref iff it closes before any whitespace/quote/brace.
      size_t j = i + 1;
      bool iri = false;
      while (j < text.size()) {
        char d = text[j];
        if (d == '>') {
          iri = true;
          break;
        }
        if (d == ' ' || d == '\t' || d == '\n' || d == '\r' || d == '"' ||
            d == '{' || d == '}')
          break;
        ++j;
      }
      if (iri) {
        emit(c);
        while (++i <= j) out.push_back(text[i]);
        i = j;
        continue;
      }
      emit(c);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    emit(c);
  }
  return out;
}

namespace {

/// First standalone query-form keyword in normalized text, as a tag char:
/// 'S' SELECT, 'A' ASK, 'C' CONSTRUCT, '?' none found. Case-insensitive,
/// word-boundary matched so IRIs or literal content containing the letters
/// don't trigger.
char QueryFormTag(const std::string& normalized) {
  auto word_at = [&](size_t pos, const char* word, size_t len) {
    if (pos + len > normalized.size()) return false;
    for (size_t i = 0; i < len; ++i) {
      if (std::toupper(static_cast<unsigned char>(normalized[pos + i])) !=
          word[i])
        return false;
    }
    bool start_ok = pos == 0 || !std::isalnum(static_cast<unsigned char>(
                                    normalized[pos - 1]));
    bool end_ok = pos + len >= normalized.size() ||
                  !std::isalnum(static_cast<unsigned char>(
                      normalized[pos + len]));
    return start_ok && end_ok;
  };
  char quote = '\0';
  for (size_t i = 0; i < normalized.size(); ++i) {
    char c = normalized[i];
    if (quote != '\0') {
      if (c == '\\') ++i;
      else if (c == quote) quote = '\0';
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      continue;
    }
    if (c == '<') {  // IRI ref: skip to '>'
      size_t end = normalized.find('>', i);
      if (end != std::string::npos) i = end;
      continue;
    }
    if (word_at(i, "SELECT", 6)) return 'S';
    if (word_at(i, "ASK", 3)) return 'A';
    if (word_at(i, "CONSTRUCT", 9)) return 'C';
  }
  return '?';
}

}  // namespace

std::string PlanCache::MakeKey(const std::string& text,
                               const ExecOptions& options,
                               uint64_t version) {
  // Only the fields consulted by Executor::Plan participate: the transform
  // toggle and (through skip_cp_equivalent_levels) the pruning toggle.
  // Execution-time knobs (thresholds, row limits, cancel tokens) do not
  // change the plan, so requests differing only in those share an entry.
  // The version suffix partitions entries per committed DatabaseVersion.
  //
  // The leading form tag partitions entries by query form (SELECT / ASK /
  // CONSTRUCT) explicitly rather than relying on the form keyword's
  // presence in the normalized text, so a CONSTRUCT and a SELECT that ever
  // normalize to related text can never serve each other's plans.
  std::string normalized = NormalizeQuery(text);
  std::string key;
  key.reserve(normalized.size() + 16);
  key.push_back(QueryFormTag(normalized));
  key.push_back('\x1f');
  key += normalized;
  key.push_back('\x1f');
  key.push_back(options.tree_transform ? 'T' : 't');
  key.push_back(options.candidate_pruning ? 'C' : 'c');
  key.push_back('\x1f');
  key += std::to_string(version);
  return key;
}

}  // namespace sparqluo
