// Sharded, byte-budgeted LRU cache of finished query results.
//
// One level above the plan cache: where a plan-cache hit skips parsing and
// transformation but still re-executes the BGPs, a result-cache hit serves
// the finished BindingSet without touching the engines at all. Soundness
// comes from the same two properties the plan cache relies on:
//
//   - entries are keyed by PlanCache::MakeKey — the normalized query text,
//     the plan-relevant option toggles, and the DatabaseVersion the query
//     executed against — so results can never be served across versions,
//   - commits run the same version-reachability sweep (EvictUnreachable)
//     over both caches through QueryService::InvalidateCaches: an entry
//     survives a commit only while its version is the current one or is
//     still pinned by an in-flight request.
//
// Budgeting is by bytes, not entries: result sizes span six orders of
// magnitude (an ASK row vs a million-row SELECT), so an entry budget would
// either starve small results or let a handful of giants own all memory.
// Each shard holds budget/shards bytes; an entry larger than a whole
// shard's budget is not cached at all (it would only evict everything else
// and then be evicted itself by the next insert).
//
// Entries are shared_ptr<const CachedResult>, so an entry evicted while a
// hit is still copying from it stays alive until that reader finishes —
// the same lifetime discipline as CachedPlan.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/binding_set.h"
#include "server/plan_cache.h"

namespace sparqluo {

class Counter;  // obs/metrics.h
class Gauge;    // obs/metrics.h

/// An immutable finished result: the rows plus the plan that produced them
/// (serializers need the plan's Query — variable names and query form — to
/// render the rows; sharing it also re-warms the plan on a result hit).
struct CachedResult {
  BindingSet rows;
  std::shared_ptr<const CachedPlan> plan;
};

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;   ///< LRU + version-sweep removals.
    uint64_t oversize = 0;    ///< Results too large to cache at all.
    size_t entries = 0;
    size_t bytes = 0;         ///< Resident payload bytes across shards.
  };

  /// `byte_budget` is the total payload budget, split evenly across
  /// `shards`. A budget of 0 disables insertion (every Put is a no-op),
  /// which keeps a disabled cache cheap without branching at call sites.
  explicit ResultCache(size_t byte_budget, size_t shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result for `key` (touching its LRU position), or
  /// null. Keys come from PlanCache::MakeKey, so the database version is
  /// part of the key.
  std::shared_ptr<const CachedResult> Get(const std::string& key);

  /// Inserts (or replaces) the result for `key`, evicting least recently
  /// used entries until the shard is back under its byte budget.
  /// `version` is the database version the result was computed against
  /// (also baked into the key); the post-commit reachability sweep uses
  /// it. Only successful results may be cached — callers must never Put a
  /// failed or aborted response.
  void Put(const std::string& key, std::shared_ptr<const CachedResult> result,
           uint64_t version);

  Stats GetStats() const;

  /// Drops every entry no reader can reach: one whose version is below
  /// `current_version` and not in `pinned_versions` (sorted ascending).
  /// Identical semantics to PlanCache::EvictUnreachable — QueryService
  /// runs both sweeps from one InvalidateCaches hook after each commit.
  void EvictUnreachable(uint64_t current_version,
                        const std::vector<uint64_t>& pinned_versions);

  /// Drops every entry (keeps hit/miss/eviction counters).
  void Clear();

  size_t byte_budget() const { return byte_budget_; }

  /// Accounted size of one entry: the rows' cell payload plus the key
  /// (which each shard stores twice: list entry + index).
  static size_t EntryBytes(const std::string& key, const CachedResult& result);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedResult> result;
    uint64_t version = 0;
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used. The map indexes into the list.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t bytes = 0;  ///< Sum of Entry::bytes currently resident.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t oversize = 0;
    // Process-global mirrors (obs/metrics.h) with a shard="N" label,
    // resolved at construction so the locked paths only bump atomics.
    Counter* hits_metric = nullptr;
    Counter* misses_metric = nullptr;
    Counter* evictions_metric = nullptr;
    Gauge* bytes_metric = nullptr;
    Gauge* entries_metric = nullptr;
  };

  /// Drops the shard's LRU tail until it fits its budget. Caller holds
  /// shard.mu.
  void EvictOverBudgetLocked(Shard& shard);

  Shard& ShardOf(const std::string& key);

  size_t byte_budget_;
  size_t per_shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sparqluo
