// Networked SPARQL Protocol endpoint: HTTP routes over a QueryService.
//
// Implements the SPARQL 1.1 Protocol subset the engine supports
// (https://www.w3.org/TR/sparql11-protocol/), plus operational routes:
//
//   GET  /sparql?query=...      query via URL parameter
//   POST /sparql                query via application/x-www-form-urlencoded
//                               (query=...) or application/sparql-query body
//   POST /update                update via form (update=...) or
//                               application/sparql-update body
//   GET  /metrics               Prometheus text exposition (obs/metrics.h)
//   GET  /healthz               liveness probe ("ok")
//
// Results stream incrementally: the worker that finished the query runs
// QueryRequest::on_complete, which serializes rows through
// sparql/result_writer.h straight into the connection's chunked response —
// a large result set never materializes as one body string, and socket
// backpressure propagates into the serializer (HttpExchange::Write blocks,
// and aborts serialization when the client disconnects).
//
// Status mapping (docs/http_endpoint.md has the full table): admission
// rejection (StatusCode::kOverloaded) is 503 with Retry-After; an in-flight
// deadline/cancellation abort is 408; a row-limit abort is 503; parse and
// protocol errors are 4xx; only genuine engine faults surface as 500.
//
// A `timeout` form/URL parameter (milliseconds) installs a per-request
// deadline, clamped to Options::max_timeout.
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "http/http_server.h"
#include "server/query_service.h"
#include "sparql/result_writer.h"

namespace sparqluo {

class SparqlEndpoint {
 public:
  struct Options {
    HttpServer::Options http;
    /// Upper bound on the client-supplied `timeout` parameter; 0 = no cap.
    /// (The service's default_deadline still applies to requests without
    /// a timeout parameter.)
    std::chrono::milliseconds max_timeout{0};
    /// Retry-After header value on 503 responses.
    int retry_after_seconds = 1;
    /// Streaming serializer flush granularity (bytes per response chunk).
    size_t flush_bytes = StreamingResultWriter::kDefaultFlushBytes;
    /// Record sparqluo_http_responses_total / sparqluo_http_request_ms.
    bool enable_metrics = true;
  };

  /// `service` and `dict` (the database's term dictionary, shared across
  /// versions) must outlive the endpoint. Stop() the endpoint before
  /// shutting the service down so in-flight completions find live workers.
  SparqlEndpoint(QueryService& service, const Dictionary& dict,
                 Options options);
  ~SparqlEndpoint();  ///< Runs Stop().

  SparqlEndpoint(const SparqlEndpoint&) = delete;
  SparqlEndpoint& operator=(const SparqlEndpoint&) = delete;

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  uint16_t port() const { return server_.port(); }
  bool running() const { return server_.running(); }

 private:
  void Handle(std::shared_ptr<HttpExchange> exchange);
  void HandleSparql(const std::shared_ptr<HttpExchange>& exchange);
  void HandleUpdate(const std::shared_ptr<HttpExchange>& exchange);

  QueryService& service_;
  const Dictionary& dict_;
  Options options_;
  HttpServer server_;
};

}  // namespace sparqluo
