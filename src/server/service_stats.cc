#include "server/service_stats.h"

#include <algorithm>

namespace sparqluo {

namespace {

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

ServiceStatsSnapshot ServiceStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStatsSnapshot out = snap_;
  out.uptime_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  uint64_t finished = out.completed + out.failed + out.aborted_deadline +
                      out.aborted_cancelled + out.aborted_row_limit;
  out.qps = out.uptime_s > 0.0 ? static_cast<double>(finished) / out.uptime_s
                               : 0.0;
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  out.p50_ms = Percentile(sorted, 0.50);
  out.p99_ms = Percentile(sorted, 0.99);
  out.latency_samples = sorted.size();
  return out;
}

}  // namespace sparqluo
