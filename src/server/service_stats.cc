#include "server/service_stats.h"

namespace sparqluo {

ServiceStats::ServiceStats(bool enable_metrics)
    : enabled_(enable_metrics), start_(std::chrono::steady_clock::now()) {
  if (!enabled_) return;
  MetricRegistry& reg = MetricRegistry::Global();
  submitted_metric_ = reg.GetCounter("sparqluo_queries_submitted_total",
                                     "Queries accepted into the queue");
  rejected_metric_ = reg.GetCounter("sparqluo_queries_rejected_total",
                                    "Queries refused by admission control");
  completed_metric_ = reg.GetCounter("sparqluo_queries_completed_total",
                                     "Queries finished with an OK status");
  failed_metric_ = reg.GetCounter("sparqluo_queries_failed_total",
                                  "Queries finished with a non-abort error");
  aborted_metric_ = reg.GetCounter(
      "sparqluo_queries_aborted_total",
      "Queries cut short by a deadline, cancellation or row limit");
  rows_metric_ = reg.GetCounter("sparqluo_query_rows_total",
                                "Result rows returned by completed queries");
  slow_metric_ = reg.GetCounter("sparqluo_slow_queries_total",
                                "Queries at or over the slow-query threshold");
  dedup_followers_metric_ =
      reg.GetCounter("sparqluo_dedup_followers_total",
                     "Queries that joined an identical in-flight leader");
  deduped_metric_ =
      reg.GetCounter("sparqluo_dedup_served_total",
                     "Queries resolved with a deduped leader's rows");
  latency_metric_ = reg.GetHistogram(
      "sparqluo_query_latency_ms",
      "End-to-end query latency (queue wait included) in milliseconds");
}

ServiceStatsSnapshot ServiceStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStatsSnapshot out = snap_;
  out.uptime_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  uint64_t finished = out.completed + out.failed + out.aborted_deadline +
                      out.aborted_cancelled + out.aborted_row_limit;
  out.qps = out.uptime_s > 0.0 ? static_cast<double>(finished) / out.uptime_s
                               : 0.0;
  out.p50_ms = latency_hist_.Quantile(0.50);
  out.p99_ms = latency_hist_.Quantile(0.99);
  out.p999_ms = latency_hist_.Quantile(0.999);
  out.latency_samples = latency_hist_.Count();
  return out;
}

}  // namespace sparqluo
