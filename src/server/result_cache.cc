#include "server/result_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace sparqluo {

ResultCache::ResultCache(size_t byte_budget, size_t shards)
    : byte_budget_(byte_budget) {
  if (shards == 0) shards = 1;
  per_shard_budget_ = (byte_budget + shards - 1) / shards;
  shards_.reserve(shards);
  MetricRegistry& reg = MetricRegistry::Global();
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    std::string label = "shard=\"" + std::to_string(i) + "\"";
    shard->hits_metric =
        reg.GetCounter("sparqluo_result_cache_hits_total",
                       "Result cache lookups served", label);
    shard->misses_metric =
        reg.GetCounter("sparqluo_result_cache_misses_total",
                       "Result cache lookups missed", label);
    shard->evictions_metric =
        reg.GetCounter("sparqluo_result_cache_evictions_total",
                       "Result cache entries evicted", label);
    shard->bytes_metric =
        reg.GetGauge("sparqluo_result_cache_bytes",
                     "Resident result cache payload bytes", label);
    shard->entries_metric =
        reg.GetGauge("sparqluo_result_cache_entries",
                     "Resident result cache entries", label);
    shards_.push_back(std::move(shard));
  }
}

size_t ResultCache::EntryBytes(const std::string& key,
                               const CachedResult& result) {
  // Width-0 results (ASK, SELECT over no variables) carry no cells but
  // still occupy an entry; charge a row-count-independent floor so a
  // million cached ASKs cannot be "free".
  size_t rows = result.rows.width() == 0
                    ? result.rows.size()
                    : result.rows.size() * result.rows.width();
  return rows * sizeof(TermId) + 2 * key.size() + sizeof(Entry) + 64;
}

ResultCache::Shard& ResultCache::ShardOf(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const CachedResult> ResultCache::Get(const std::string& key) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    shard.misses_metric->Increment();
    return nullptr;
  }
  ++shard.hits;
  shard.hits_metric->Increment();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->result;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const CachedResult> result,
                      uint64_t version) {
  Shard& shard = ShardOf(key);
  size_t bytes = EntryBytes(key, *result);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (bytes > per_shard_budget_) {
    // Caching this result would evict the shard's whole working set and
    // the entry itself would go next; don't thrash.
    ++shard.oversize;
    return;
  }
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent executors can race to insert the same key; keep the
    // newest (they are byte-identical anyway — same key means same
    // version and same normalized text).
    shard.bytes -= it->second->bytes;
    it->second->result = std::move(result);
    it->second->version = version;
    it->second->bytes = bytes;
    shard.bytes += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(result), version, bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
  }
  EvictOverBudgetLocked(shard);
  shard.bytes_metric->Set(static_cast<int64_t>(shard.bytes));
  shard.entries_metric->Set(static_cast<int64_t>(shard.lru.size()));
}

void ResultCache::EvictOverBudgetLocked(Shard& shard) {
  while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
    shard.evictions_metric->Increment();
  }
}

void ResultCache::EvictUnreachable(
    uint64_t current_version, const std::vector<uint64_t>& pinned_versions) {
  auto reachable = [&](uint64_t version) {
    return version >= current_version ||
           std::binary_search(pinned_versions.begin(), pinned_versions.end(),
                              version);
  };
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (!reachable(it->version)) {
        shard->bytes -= it->bytes;
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++shard->evictions;
        shard->evictions_metric->Increment();
      } else {
        ++it;
      }
    }
    shard->bytes_metric->Set(static_cast<int64_t>(shard->bytes));
    shard->entries_metric->Set(static_cast<int64_t>(shard->lru.size()));
  }
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.clear();
    shard->lru.clear();
    shard->bytes = 0;
    shard->bytes_metric->Set(0);
    shard->entries_metric->Set(0);
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.oversize += shard->oversize;
    out.entries += shard->lru.size();
    out.bytes += shard->bytes;
  }
  return out;
}

}  // namespace sparqluo
