#include "server/query_service.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/logging.h"
#include "util/timer.h"

namespace sparqluo {

namespace {

/// Runs a completion hook, swallowing anything it throws: hooks run on
/// pool workers (or the submitting thread on rejection) where an escaped
/// exception would std::terminate the process.
template <typename Response>
void InvokeCompletion(const std::function<void(const Response&)>& hook,
                      const Response& response) {
  if (!hook) return;
  try {
    hook(response);
  } catch (const std::exception& e) {
    SPARQLUO_LOG(kError) << "completion hook threw: " << e.what();
  } catch (...) {
    SPARQLUO_LOG(kError) << "completion hook threw an unknown exception";
  }
}

}  // namespace

QueryService::QueryService(const Database& db, Options options)
    : db_(db),
      options_(options),
      cache_(options.plan_cache_capacity, options.plan_cache_shards),
      // A disabled result cache gets a zero byte budget: every Put is a
      // no-op, Get always misses, and the sweep walks empty shards.
      result_cache_(options.enable_result_cache ? options.result_cache_bytes
                                                : 0,
                    options.result_cache_shards),
      stats_(options.enable_metrics) {
  assert(db.finalized() && "QueryService requires a finalized Database");
  if (options_.enable_metrics) {
    MetricRegistry& reg = MetricRegistry::Global();
    pinned_gauge_ = reg.GetGauge(
        "sparqluo_pinned_versions",
        "Distinct database versions currently pinned by in-flight requests");
    pinned_requests_gauge_ = reg.GetGauge(
        "sparqluo_pinned_requests",
        "In-flight requests currently holding a version pin");
    dedup_leaders_metric_ = reg.GetCounter(
        "sparqluo_dedup_leaders_total",
        "Executions whose result was shared with at least one follower");
  }
  // Cache invalidation is driven by the store itself: every published
  // version sweeps both caches, no matter which path committed it.
  commit_listener_ =
      db_.AddCommitListener([this](uint64_t v) { InvalidateCaches(v); });
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    size_t threads = options_.num_threads;
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    pool_ = std::make_shared<ExecutorPool>(threads);
    owns_pool_ = true;
  }
}

QueryService::QueryService(Database& db, Options options)
    : QueryService(static_cast<const Database&>(db), std::move(options)) {
  updatable_db_ = &db;
}

QueryService::~QueryService() {
  Shutdown();
  // After the listener is removed it can never fire again (removal blocks
  // on an in-flight invocation), so the caches it touches are safe to
  // destroy.
  db_.RemoveCommitListener(commit_listener_);
}

void QueryService::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  // Only a service-owned pool is stopped; a shared pool outlives us. Done
  // outside mu_: pool workers finishing tasks take mu_ to decrement
  // in_flight_.
  if (owns_pool_) pool_->Shutdown();
}

bool QueryService::Admit(Status* reject) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    stats_.RecordRejected();
    *reject = Status::Overloaded("query service is shut down");
    return false;
  }
  // Admission control: pool size requests can run, max_queue more can
  // wait; everything beyond bounces immediately. kOverloaded (not
  // ResourceExhausted) so callers — the HTTP endpoint in particular — can
  // tell "retry later" apart from a query that died mid-flight.
  if (in_flight_ >= pool_->num_threads() + options_.max_queue) {
    stats_.RecordRejected();
    *reject = Status::Overloaded("admission queue full, request rejected");
    return false;
  }
  ++in_flight_;
  return true;
}

std::future<QueryResponse> QueryService::Submit(QueryRequest request) {
  auto task = std::make_shared<Task>();
  task->request = std::move(request);
  // Service-wide tracing creates the context before stamping the submission
  // time, so the context epoch precedes every span start (the root "query"
  // span and queue_wait both begin at `submitted`).
  if (options_.trace_queries && task->request.trace == nullptr)
    task->request.trace = std::make_shared<TraceContext>(options_.trace_max_spans);
  task->submitted = std::chrono::steady_clock::now();
  std::future<QueryResponse> future = task->promise.get_future();
  Status reject;
  if (!Admit(&reject)) {
    QueryResponse rejected;
    rejected.status = std::move(reject);
    InvokeCompletion(task->request.on_complete, rejected);
    task->promise.set_value(std::move(rejected));
    return future;
  }
  stats_.RecordSubmitted();
  pool_->Submit([this, task] {
    QueryResponse response;
    // Nothing may escape Process(): an uncaught exception would unwind the
    // pool worker and std::terminate the whole service. bad_alloc from a
    // runaway intermediate is the realistic case; fail the one query.
    try {
      response = Process(*task);
    } catch (const std::exception& e) {
      response = QueryResponse();
      response.status = Status::Internal(std::string("query threw: ") +
                                         e.what());
    } catch (...) {
      response = QueryResponse();
      response.status = Status::Internal("query threw an unknown exception");
    }
    stats_.RecordFinished(response.status, response.metrics, response.total_ms,
                          response.plan_cache_hit, response.rows.size(),
                          response.result_cache_hit, response.deduped);
    if (options_.slow_query_ms > 0 &&
        response.total_ms >= options_.slow_query_ms) {
      stats_.RecordSlowQuery();
      uint64_t nth = slow_seen_.fetch_add(1, std::memory_order_relaxed);
      size_t sample = std::max<size_t>(1, options_.slow_query_sample);
      if (nth % sample == 0) {
        // One line per sampled slow query; the text is truncated so a
        // pathological query cannot flood the log.
        std::string text = task->request.text;
        if (text.size() > 200) text = text.substr(0, 200) + "...";
        SPARQLUO_LOG(kWarn)
            << "slow query (" << response.total_ms << " ms >= "
            << options_.slow_query_ms << " ms): status="
            << (response.status.ok() ? "ok" : response.status.message())
            << " rows=" << response.rows.size() << " cache_hit="
            << (response.plan_cache_hit ? "true" : "false") << " version="
            << response.version << " text=" << text;
      }
    }
    InvokeCompletion(task->request.on_complete, response);
    task->promise.set_value(std::move(response));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_.notify_all();
    }
  });
  return future;
}

std::future<UpdateResponse> QueryService::SubmitUpdate(UpdateRequest request) {
  auto state = std::make_shared<
      std::pair<UpdateRequest, std::promise<UpdateResponse>>>();
  state->first = std::move(request);
  std::future<UpdateResponse> future = state->second.get_future();
  Status reject;
  if (!Admit(&reject)) {
    UpdateResponse rejected;
    rejected.status = std::move(reject);
    InvokeCompletion(state->first.on_complete, rejected);
    state->second.set_value(std::move(rejected));
    return future;
  }
  stats_.RecordUpdateSubmitted();
  pool_->Submit([this, state] {
    UpdateResponse response;
    try {
      response = ProcessUpdate(state->first);
    } catch (const std::exception& e) {
      response = UpdateResponse();
      response.status =
          Status::Internal(std::string("update threw: ") + e.what());
    } catch (...) {
      response = UpdateResponse();
      response.status = Status::Internal("update threw an unknown exception");
    }
    stats_.RecordUpdateFinished(response.status, response.commit);
    InvokeCompletion(state->first.on_complete, response);
    state->second.set_value(std::move(response));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_.notify_all();
    }
  });
  return future;
}

QueryService::VersionPin::VersionPin(
    QueryService* service, std::shared_ptr<const DatabaseVersion>* snap)
    : service_(service) {
  // Snapshot + register atomically: a commit whose eviction floor is
  // computed under the same mutex either runs first (this pin then
  // snapshots the new version) or sees this pin and keeps the
  // snapshotted version's plans. Snapshot() only touches the versioned
  // store's current_mu_, which is never held while mu_ is taken.
  std::lock_guard<std::mutex> lock(service_->mu_);
  *snap = service_->db_.Snapshot();
  version_ = (*snap)->id;
  service_->pinned_versions_.insert(version_);
  service_->UpdatePinnedGaugesLocked();
}

QueryService::VersionPin::~VersionPin() {
  std::lock_guard<std::mutex> lock(service_->mu_);
  auto it = service_->pinned_versions_.find(version_);
  if (it != service_->pinned_versions_.end())
    service_->pinned_versions_.erase(it);
  service_->UpdatePinnedGaugesLocked();
}

void QueryService::UpdatePinnedGaugesLocked() {
  if (pinned_gauge_ == nullptr) return;
  // pinned_versions_ is a multiset (one pin per in-flight request), so its
  // size() is the pin count, not the version count: N concurrent requests
  // on one version are one pinned version. Walk the distinct keys —
  // requests cluster on the current version, so this is O(distinct
  // versions), typically 1-2 steps.
  size_t distinct = 0;
  for (auto it = pinned_versions_.begin(); it != pinned_versions_.end();
       it = pinned_versions_.upper_bound(*it))
    ++distinct;
  pinned_gauge_->Set(static_cast<int64_t>(distinct));
  pinned_requests_gauge_->Set(
      static_cast<int64_t>(pinned_versions_.size()));
}

void QueryService::InvalidateCaches(uint64_t current_version) {
  std::vector<uint64_t> pinned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pinned.assign(pinned_versions_.begin(), pinned_versions_.end());
  }
  // EvictUnreachable wants sorted distinct versions; the multiset copy is
  // sorted already.
  pinned.erase(std::unique(pinned.begin(), pinned.end()), pinned.end());
  // Both sweeps run unconditionally: gating on enable_plan_cache (as the
  // pre-result-cache code did) would leave a plan-cache-disabled service's
  // result cache accumulating entries for dead versions forever. Disabled
  // caches are empty, so the extra sweep costs a few empty-shard locks.
  cache_.EvictUnreachable(current_version, pinned);
  result_cache_.EvictUnreachable(current_version, pinned);
}

UpdateResponse QueryService::ProcessUpdate(const UpdateRequest& request) {
  Timer timer;
  UpdateResponse response;
  if (updatable_db_ == nullptr) {
    response.status = Status::FailedPrecondition(
        "read-only query service: construct with a mutable Database to "
        "accept updates");
    response.total_ms = timer.ElapsedMillis();
    return response;
  }
  Result<CommitStats> commit =
      request.text.empty() ? updatable_db_->Apply(request.batch)
                           : updatable_db_->Update(request.text);
  response.status = commit.status();
  if (commit.ok()) {
    response.commit = *commit;
    // Version-scoped cache eviction happens inside the commit itself: the
    // store's commit listener runs InvalidateCaches for every published
    // version (see the constructor), so entries reachable by no reader —
    // neither keyed at the just-committed version nor at a version an
    // in-flight request still pins — are already gone by the time the
    // commit result reaches us. Plans and results for pinned older
    // versions survive (a queued request that snapshotted just before the
    // commit still gets its cache hit).
  }
  response.total_ms = timer.ElapsedMillis();
  return response;
}

std::vector<QueryResponse> QueryService::RunBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& req : requests) futures.push_back(Submit(std::move(req)));
  std::vector<QueryResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

QueryResponse QueryService::Process(Task& task) {
  // End-to-end latency is measured from submission, so queue wait counts.
  auto elapsed_ms = [&task] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - task.submitted)
        .count();
  };
  QueryResponse response;
  const QueryRequest& req = task.request;

  // Root "query" span: opened at submission time so queue wait is inside
  // it, closed (with outcome attrs) on every path out of this function.
  TraceContext* trace = req.trace.get();
  response.trace = req.trace;
  TraceContext::SpanId root = TraceContext::kNoSpan;
  if (trace != nullptr) {
    root = trace->StartSpanAt("query", TraceContext::kNoSpan, task.submitted);
    TraceContext::SpanId queue_span =
        trace->StartSpanAt("queue_wait", root, task.submitted);
    trace->EndSpan(queue_span);
  }
  auto finish_trace = [&](const QueryResponse& r) {
    if (trace == nullptr) return;
    trace->AddAttr(root, "version", std::to_string(r.version));
    trace->AddAttr(root, "cache_hit", r.plan_cache_hit ? "true" : "false");
    if (r.result_cache_hit) trace->AddAttr(root, "result_cache_hit", "true");
    if (r.deduped) trace->AddAttr(root, "deduped", "true");
    trace->AddAttr(root, "rows", std::to_string(r.rows.size()));
    trace->AddAttr(root, "status", r.status.ok() ? "ok" : r.status.ToString());
    trace->EndSpan(root);
  };

  // Effective deadline: per-request, falling back to the service default.
  // It is measured from submission, so time spent queued counts against it.
  std::chrono::milliseconds deadline = req.deadline.count() > 0
                                           ? req.deadline
                                           : options_.default_deadline;
  std::shared_ptr<CancelToken> owned;
  const CancelToken* cancel = nullptr;
  if (req.cancel != nullptr) {
    if (deadline.count() > 0) req.cancel->SetDeadline(task.submitted + deadline);
    cancel = req.cancel.get();
  } else if (deadline.count() > 0) {
    owned = std::make_shared<CancelToken>(task.submitted + deadline);
    cancel = owned.get();
  }

  ExecOptions options = req.options;
  options.cancel = cancel;
  options.trace = trace;
  options.trace_parent = root;
  // Intra-query parallelism: morsels fan out onto the service's own pool.
  // Requests keeping the default of 1 inherit the service-wide setting
  // unless they opted out (inherit_parallelism = false forces their
  // literal parallelism, so 1 means sequential).
  options.parallel.pool = pool_.get();
  if (req.inherit_parallelism && options.parallel.parallelism == 1)
    options.parallel.parallelism = options_.intra_query_parallelism;

  // Pin the version for the whole plan + execute: a commit that lands
  // mid-request cannot swap the store underneath this query, and the plan
  // cache key carries the pinned version so plans never cross versions.
  // The pin snapshots and registers the version in one step; it is the
  // eviction floor, so a commit landing while this request runs keeps
  // this version's cached plans.
  std::shared_ptr<const DatabaseVersion> snap;
  VersionPin pin(this, &snap);
  response.version = snap->id;

  // One key serves all three sharing layers: it carries the query form,
  // the normalized text, the plan-relevant option toggles and the pinned
  // version, so anything it matches is byte-identical by construction.
  const bool want_key = options_.enable_plan_cache ||
                        options_.enable_result_cache || options_.enable_dedup;
  std::string key;
  if (want_key) key = PlanCache::MakeKey(req.text, options, snap->id);

  // Result cache: a hit is the whole response — rows and the plan that
  // produced them — with zero engine work.
  if (options_.enable_result_cache) {
    ScopedSpan lookup_span(trace, "result_cache_lookup", root);
    std::shared_ptr<const CachedResult> hit = result_cache_.Get(key);
    lookup_span.Attr("hit", hit != nullptr ? "true" : "false");
    if (hit != nullptr) {
      response.rows = hit->rows;  // copy; the entry stays shared in cache
      response.plan = hit->plan;
      response.result_cache_hit = true;
      response.total_ms = elapsed_ms();
      finish_trace(response);
      return response;
    }
  }

  // In-flight dedup: if an identical (key, version) query is already
  // executing, wait for its result instead of executing again. The leader
  // is by definition already running on a worker, so a follower blocking
  // here can never deadlock the leader — and the leader's own morsels
  // stay live even on a saturated pool because ParallelFor lets the
  // calling thread drain its morsel queue itself.
  std::shared_ptr<InflightQuery> inflight;
  bool leader = false;
  if (options_.enable_dedup) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto [it, inserted] = inflight_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<InflightQuery>();
      it->second->future = it->second->promise.get_future().share();
      leader = true;
    }
    inflight = it->second;
  }
  if (inflight != nullptr && !leader) {
    // Follower: wait on the leader with this request's OWN deadline and
    // cancellation. The leader's token is untouched — a follower giving
    // up never cancels the leader (other followers may still want the
    // result), and a leader failing never turns into a follower error:
    // the published null makes the follower fall through and execute for
    // itself, so errors are never shared, let alone cached.
    inflight->waiters.fetch_add(1, std::memory_order_relaxed);
    stats_.RecordDedupFollower();
    ScopedSpan wait_span(trace, "dedup_wait", root);
    std::shared_ptr<const CachedResult> shared;
    bool resolved = false;
    bool expired = false;
    while (true) {
      if (cancel != nullptr &&
          (cancel->cancel_requested() || cancel->Expired())) {
        expired = !cancel->cancel_requested();
        break;
      }
      if (inflight->future.wait_for(std::chrono::milliseconds(2)) ==
          std::future_status::ready) {
        shared = inflight->future.get();
        resolved = true;
        break;
      }
    }
    wait_span.Attr("outcome", !resolved ? (expired ? "deadline" : "cancelled")
                                        : (shared != nullptr
                                               ? "shared"
                                               : "leader_failed"));
    if (resolved && shared != nullptr) {
      response.rows = shared->rows;
      response.plan = shared->plan;
      response.deduped = true;
      response.total_ms = elapsed_ms();
      finish_trace(response);
      return response;
    }
    if (!resolved) {
      // The follower's own deadline/cancel fired first. Mirror the abort
      // shape the executor produces so the HTTP layer maps it the same
      // way (408 for deadline, etc.).
      response.metrics.aborted = true;
      response.metrics.abort_reason =
          expired ? AbortReason::kDeadline : AbortReason::kCancelled;
      response.status = expired
                            ? Status::ResourceExhausted("query deadline exceeded")
                            : Status::ResourceExhausted("query cancelled");
      response.total_ms = elapsed_ms();
      finish_trace(response);
      return response;
    }
    // Leader failed: fall through and execute this request normally.
    inflight = nullptr;
  }
  // Leader (or dedup disabled / leader-failure fallthrough): execute, and
  // publish the outcome to any followers no matter how this scope exits.
  // The guard's destructor publishes null on exceptional exits so
  // followers never hang on a leader that threw.
  struct InflightGuard {
    QueryService* service;
    const std::string* key;
    std::shared_ptr<InflightQuery> entry;
    void Publish(std::shared_ptr<const CachedResult> result) {
      if (entry == nullptr) return;
      {
        std::lock_guard<std::mutex> lock(service->inflight_mu_);
        service->inflight_.erase(*key);
      }
      // Unregistered before resolving: a submission arriving now becomes
      // a fresh leader instead of joining a finished one.
      entry->promise.set_value(std::move(result));
      entry = nullptr;
    }
    ~InflightGuard() { Publish(nullptr); }
  } publish{this, &key, leader ? inflight : nullptr};

  std::shared_ptr<const CachedPlan> plan;
  if (options_.enable_plan_cache) {
    ScopedSpan lookup_span(trace, "plan_cache_lookup", root);
    plan = cache_.Get(key);
    lookup_span.Attr("hit", plan != nullptr ? "true" : "false");
  }
  if (plan != nullptr) {
    response.plan_cache_hit = true;
    // Report the cached plan's transform decisions; transform_ms stays 0 —
    // no transformation work happened on this request.
    response.metrics.transform = plan->transform;
  } else {
    Result<Query> parsed = [&] {
      ScopedSpan parse_span(trace, "parse", root);
      return db_.Parse(req.text);
    }();
    if (!parsed.ok()) {
      response.status = parsed.status();
      response.total_ms = elapsed_ms();
      finish_trace(response);
      return response;
    }
    auto built = std::make_shared<CachedPlan>();
    built->query = std::move(*parsed);
    built->tree =
        snap->executor->Plan(built->query, options, &response.metrics);
    Status valid = built->tree.Validate();
    if (!valid.ok()) {
      response.status = valid;
      response.total_ms = elapsed_ms();
      finish_trace(response);
      return response;
    }
    built->transform = response.metrics.transform;
    plan = built;
    if (options_.enable_plan_cache) cache_.Put(key, std::move(built), snap->id);
  }

  auto result =
      snap->executor->ExecutePlanned(plan->query, plan->tree, options,
                                     &response.metrics);
  response.status = result.status();
  if (result.ok()) response.rows = std::move(*result);
  // Hand the plan back so consumers can serialize `rows` (variable names
  // and the SELECT/ASK form live in plan->query).
  response.plan = std::move(plan);

  if (response.status.ok() &&
      (options_.enable_result_cache || publish.entry != nullptr)) {
    // One shared immutable copy serves both sharing layers: the result
    // cache keeps it for future requests, and waiting followers copy
    // their rows out of it. Only successful responses are ever published
    // or cached — failures and aborts always stay private to the request
    // that suffered them.
    auto shared = std::make_shared<CachedResult>();
    shared->rows = response.rows;
    shared->plan = response.plan;
    if (options_.enable_result_cache)
      result_cache_.Put(key, shared, snap->id);
    if (publish.entry != nullptr) {
      if (publish.entry->waiters.load(std::memory_order_relaxed) > 0 &&
          dedup_leaders_metric_ != nullptr)
        dedup_leaders_metric_->Increment();
      publish.Publish(std::move(shared));
    }
  }
  response.total_ms = elapsed_ms();
  finish_trace(response);
  return response;
}

}  // namespace sparqluo
