#include "server/query_service.h"

#include <cassert>


namespace sparqluo {

QueryService::QueryService(const Database& db, Options options)
    : db_(db),
      options_(options),
      cache_(options.plan_cache_capacity, options.plan_cache_shards) {
  assert(db.finalized() && "QueryService requires a finalized Database");
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

std::future<QueryResponse> QueryService::Submit(QueryRequest request) {
  Task task;
  task.request = std::move(request);
  task.submitted = std::chrono::steady_clock::now();
  std::future<QueryResponse> future = task.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      stats_.RecordRejected();
      QueryResponse rejected;
      rejected.status = Status::Internal("query service is shut down");
      task.promise.set_value(std::move(rejected));
      return future;
    }
    if (queue_.size() >= options_.max_queue) {
      stats_.RecordRejected();
      QueryResponse rejected;
      rejected.status =
          Status::ResourceExhausted("admission queue full, query rejected");
      task.promise.set_value(std::move(rejected));
      return future;
    }
    stats_.RecordSubmitted();
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

std::vector<QueryResponse> QueryService::RunBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& req : requests) futures.push_back(Submit(std::move(req)));
  std::vector<QueryResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

void QueryService::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueryResponse response;
    // Nothing may escape Process(): an uncaught exception would unwind the
    // worker thread and std::terminate the whole service. bad_alloc from a
    // runaway intermediate is the realistic case; fail the one query.
    try {
      response = Process(task);
    } catch (const std::exception& e) {
      response = QueryResponse();
      response.status = Status::Internal(std::string("query threw: ") +
                                         e.what());
    } catch (...) {
      response = QueryResponse();
      response.status = Status::Internal("query threw an unknown exception");
    }
    stats_.RecordFinished(response.status, response.metrics, response.total_ms,
                          response.plan_cache_hit, response.rows.size());
    task.promise.set_value(std::move(response));
  }
}

QueryResponse QueryService::Process(Task& task) {
  // End-to-end latency is measured from submission, so queue wait counts.
  auto elapsed_ms = [&task] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - task.submitted)
        .count();
  };
  QueryResponse response;
  const QueryRequest& req = task.request;

  // Effective deadline: per-request, falling back to the service default.
  // It is measured from submission, so time spent queued counts against it.
  std::chrono::milliseconds deadline = req.deadline.count() > 0
                                           ? req.deadline
                                           : options_.default_deadline;
  std::shared_ptr<CancelToken> owned;
  const CancelToken* cancel = nullptr;
  if (req.cancel != nullptr) {
    if (deadline.count() > 0) req.cancel->SetDeadline(task.submitted + deadline);
    cancel = req.cancel.get();
  } else if (deadline.count() > 0) {
    owned = std::make_shared<CancelToken>(task.submitted + deadline);
    cancel = owned.get();
  }

  ExecOptions options = req.options;
  options.cancel = cancel;

  std::shared_ptr<const CachedPlan> plan;
  std::string key;
  if (options_.enable_plan_cache) {
    key = PlanCache::MakeKey(req.text, options);
    plan = cache_.Get(key);
  }
  if (plan != nullptr) {
    response.plan_cache_hit = true;
    // Report the cached plan's transform decisions; transform_ms stays 0 —
    // no transformation work happened on this request.
    response.metrics.transform = plan->transform;
  } else {
    auto parsed = db_.Parse(req.text);
    if (!parsed.ok()) {
      response.status = parsed.status();
      response.total_ms = elapsed_ms();
      return response;
    }
    auto built = std::make_shared<CachedPlan>();
    built->query = std::move(*parsed);
    built->tree =
        db_.executor().Plan(built->query, options, &response.metrics);
    Status valid = built->tree.Validate();
    if (!valid.ok()) {
      response.status = valid;
      response.total_ms = elapsed_ms();
      return response;
    }
    built->transform = response.metrics.transform;
    plan = built;
    if (options_.enable_plan_cache) cache_.Put(key, std::move(built));
  }

  auto result =
      db_.executor().ExecutePlanned(plan->query, plan->tree, options,
                                    &response.metrics);
  response.status = result.status();
  if (result.ok()) response.rows = std::move(*result);
  response.total_ms = elapsed_ms();
  return response;
}

}  // namespace sparqluo
