// Sharded LRU cache of parsed + transformed query plans.
//
// Parsing and multi-level transformation (transform_ms) are pure functions
// of (query text, optimization mode) once the database is finalized, so a
// concurrent query service can reuse plans across requests. The cache is
// sharded to keep lock hold times short under many worker threads; each
// shard is an independent LRU protected by its own mutex. Entries are
// shared_ptrs, so an entry evicted while another thread still executes
// against it stays alive until that execution finishes.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "betree/be_tree.h"
#include "engine/executor.h"
#include "sparql/ast.h"

namespace sparqluo {

class Counter;  // obs/metrics.h

/// An immutable cached plan: the parsed query plus its (possibly
/// transformed) BE-tree, already validated.
struct CachedPlan {
  Query query;
  BeTree tree;
  TransformStats transform;  ///< Stats recorded when the plan was built.
};

class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  /// `capacity` is the total entry budget, split evenly across `shards`.
  explicit PlanCache(size_t capacity, size_t shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key` (touching its LRU position), or null.
  std::shared_ptr<const CachedPlan> Get(const std::string& key);

  /// Inserts (or replaces) the plan for `key`, evicting the shard's least
  /// recently used entry when over budget. `version` is the database
  /// version the plan was built against (it is also baked into the key);
  /// version-scoped eviction uses it after commits.
  void Put(const std::string& key, std::shared_ptr<const CachedPlan> plan,
           uint64_t version = 0);

  Stats GetStats() const;

  /// Drops every entry no reader can reach: one whose version is below
  /// `current_version` and not in `pinned_versions` (sorted ascending).
  /// Keeps hit/miss counters; removals count as evictions. The query
  /// service calls this after each commit with the versions still pinned
  /// by in-flight requests: plans for pinned older versions survive — a
  /// request that snapshotted just before the commit still hits — while
  /// entries for unreachable intermediate versions (published and
  /// superseded while an old pin was held) stop occupying LRU budget.
  void EvictUnreachable(uint64_t current_version,
                        const std::vector<uint64_t>& pinned_versions);

  /// Drops every entry (keeps hit/miss/eviction counters).
  void Clear();

  size_t capacity() const { return capacity_; }

  /// Whitespace-normalized query text: runs of whitespace outside quoted
  /// literals collapse to one space so trivially reformatted queries share
  /// a cache entry.
  static std::string NormalizeQuery(const std::string& text);

  /// Cache key: a query-form tag (SELECT / ASK / CONSTRUCT) + normalized
  /// text + the option fields that affect planning + the database version
  /// the plan was built against. The form tag keeps plans for different
  /// query forms in disjoint key spaces; versioning the key makes
  /// cross-version hits impossible: after a commit, a repeated query
  /// misses and replans against the new version's statistics.
  static std::string MakeKey(const std::string& text,
                             const ExecOptions& options,
                             uint64_t version = 0);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
    uint64_t version = 0;  ///< Database version the plan was built against.
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used. The map indexes into the list.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    // Process-global mirrors (obs/metrics.h) with a shard="N" label,
    // resolved at construction so the locked paths only bump atomics.
    Counter* hits_metric = nullptr;
    Counter* misses_metric = nullptr;
    Counter* evictions_metric = nullptr;
  };

  Shard& ShardOf(const std::string& key);
  const Shard& ShardOf(const std::string& key) const;

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sparqluo
