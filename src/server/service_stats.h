// Thread-safe service-level aggregation of per-query metrics.
//
// Workers call Record* after each request; Snapshot() is safe to call
// concurrently and computes derived figures (QPS, latency percentiles).
//
// Latency percentiles come from a fixed-memory log-linear Histogram
// (obs/metrics.h) instead of a capped sample vector: under sustained
// traffic the percentiles keep tracking the live distribution instead of
// freezing at the first 2^18 requests. Each service owns its histogram so
// Snapshot() reflects this service only, and mirrors its counters into the
// process-global MetricRegistry (the Prometheus export) unless constructed
// with enable_metrics = false — that path skips every histogram observe
// and registry increment and is the "no observability" baseline the
// bench_throughput overhead gate compares against.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "bgp/engine.h"
#include "engine/executor.h"
#include "obs/metrics.h"
#include "store/versioned_store.h"

namespace sparqluo {

/// Point-in-time view of the service counters.
struct ServiceStatsSnapshot {
  uint64_t submitted = 0;   ///< Accepted into the queue.
  uint64_t rejected = 0;    ///< Refused by admission control.
  uint64_t completed = 0;   ///< Finished with an OK status.
  uint64_t failed = 0;      ///< Finished with a non-abort error (e.g. parse).
  uint64_t aborted_deadline = 0;
  uint64_t aborted_cancelled = 0;
  uint64_t aborted_row_limit = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t result_cache_hits = 0;  ///< Served straight from the result cache.
  /// Requests that joined an identical in-flight leader (counted when the
  /// wait starts, whether or not the leader's result was ultimately used).
  uint64_t dedup_followers = 0;
  uint64_t deduped = 0;            ///< Requests resolved with a leader's rows.
  uint64_t rows_returned = 0;
  uint64_t slow_queries = 0;    ///< total_ms >= the service's slow threshold.
  BgpEvalCounters bgp;          ///< Merged engine counters.
  double total_exec_ms = 0.0;
  double total_transform_ms = 0.0;
  double uptime_s = 0.0;
  double qps = 0.0;             ///< Finished queries per second of uptime.
  double p50_ms = 0.0;          ///< End-to-end latency percentiles.
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  size_t latency_samples = 0;   ///< Histogram count (never capped).

  // Write-path counters (QueryService::SubmitUpdate).
  uint64_t updates_submitted = 0;
  uint64_t updates_committed = 0;  ///< Commits that published a version.
  uint64_t updates_failed = 0;     ///< Parse errors, read-only service, ...
  uint64_t triples_inserted = 0;   ///< Net inserts across all commits.
  uint64_t triples_deleted = 0;    ///< Net deletes across all commits.
  uint64_t store_version = 0;      ///< Highest version seen by a commit.
  double total_commit_ms = 0.0;

  double CacheHitRate() const {
    uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

class ServiceStats {
 public:
  explicit ServiceStats(bool enable_metrics = true);

  void RecordSubmitted() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.submitted;
    if (enabled_) submitted_metric_->Increment();
  }
  void RecordRejected() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.rejected;
    if (enabled_) rejected_metric_->Increment();
  }

  /// A request that started waiting on an identical in-flight leader.
  /// Recorded at wait start (not resolution) so tests and dashboards can
  /// observe fan-in while the leader is still running.
  void RecordDedupFollower() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.dedup_followers;
    if (enabled_) dedup_followers_metric_->Increment();
  }

  /// One finished request: its status-derived outcome, metrics, end-to-end
  /// latency and whether the plan/result came from a cache or a deduped
  /// leader.
  void RecordFinished(const Status& status, const ExecMetrics& metrics,
                      double latency_ms, bool cache_hit, size_t rows,
                      bool result_cache_hit = false, bool deduped = false) {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      ++snap_.completed;
      snap_.rows_returned += rows;
      if (enabled_) {
        completed_metric_->Increment();
        rows_metric_->Increment(rows);
      }
    } else if (metrics.aborted) {
      switch (metrics.abort_reason) {
        case AbortReason::kDeadline: ++snap_.aborted_deadline; break;
        case AbortReason::kCancelled: ++snap_.aborted_cancelled; break;
        default: ++snap_.aborted_row_limit; break;
      }
      if (enabled_) aborted_metric_->Increment();
    } else {
      ++snap_.failed;
      if (enabled_) failed_metric_->Increment();
    }
    if (cache_hit) {
      ++snap_.cache_hits;
    } else {
      ++snap_.cache_misses;
    }
    if (result_cache_hit) ++snap_.result_cache_hits;
    if (deduped) {
      ++snap_.deduped;
      if (enabled_) deduped_metric_->Increment();
    }
    snap_.bgp.Merge(metrics.bgp);
    snap_.total_exec_ms += metrics.exec_ms;
    snap_.total_transform_ms += metrics.transform_ms;
    if (enabled_) {
      latency_hist_.Observe(latency_ms);
      latency_metric_->Observe(latency_ms);
    }
  }

  /// One request at or over the slow-query threshold (counted whether or
  /// not it was sampled into the log).
  void RecordSlowQuery() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.slow_queries;
    if (enabled_) slow_metric_->Increment();
  }

  void RecordUpdateSubmitted() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.updates_submitted;
  }

  /// One finished update request.
  void RecordUpdateFinished(const Status& status, const CommitStats& commit) {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      ++snap_.updates_committed;
      snap_.triples_inserted += commit.inserted;
      snap_.triples_deleted += commit.deleted;
      snap_.store_version = std::max(snap_.store_version, commit.version);
      snap_.total_commit_ms += commit.commit_ms;
    } else {
      ++snap_.updates_failed;
    }
  }

  bool metrics_enabled() const { return enabled_; }

  ServiceStatsSnapshot Snapshot() const;

 private:
  const bool enabled_;

  mutable std::mutex mu_;
  ServiceStatsSnapshot snap_;
  /// Per-service latency distribution (fixed ~15 KB regardless of sample
  /// count); the source of the snapshot's p50/p99/p999.
  Histogram latency_hist_;
  std::chrono::steady_clock::time_point start_;

  // Process-global mirrors (valid only when enabled_).
  Counter* submitted_metric_ = nullptr;
  Counter* rejected_metric_ = nullptr;
  Counter* completed_metric_ = nullptr;
  Counter* failed_metric_ = nullptr;
  Counter* aborted_metric_ = nullptr;
  Counter* rows_metric_ = nullptr;
  Counter* slow_metric_ = nullptr;
  Counter* dedup_followers_metric_ = nullptr;
  Counter* deduped_metric_ = nullptr;
  Histogram* latency_metric_ = nullptr;
};

}  // namespace sparqluo
