// Thread-safe service-level aggregation of per-query metrics.
//
// Workers call Record* after each request; Snapshot() is safe to call
// concurrently and computes derived figures (QPS, latency percentiles).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "bgp/engine.h"
#include "engine/executor.h"
#include "store/versioned_store.h"

namespace sparqluo {

/// Point-in-time view of the service counters.
struct ServiceStatsSnapshot {
  uint64_t submitted = 0;   ///< Accepted into the queue.
  uint64_t rejected = 0;    ///< Refused by admission control.
  uint64_t completed = 0;   ///< Finished with an OK status.
  uint64_t failed = 0;      ///< Finished with a non-abort error (e.g. parse).
  uint64_t aborted_deadline = 0;
  uint64_t aborted_cancelled = 0;
  uint64_t aborted_row_limit = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t rows_returned = 0;
  BgpEvalCounters bgp;          ///< Merged engine counters.
  double total_exec_ms = 0.0;
  double total_transform_ms = 0.0;
  double uptime_s = 0.0;
  double qps = 0.0;             ///< Finished queries per second of uptime.
  double p50_ms = 0.0;          ///< End-to-end latency percentiles.
  double p99_ms = 0.0;
  size_t latency_samples = 0;

  // Write-path counters (QueryService::SubmitUpdate).
  uint64_t updates_submitted = 0;
  uint64_t updates_committed = 0;  ///< Commits that published a version.
  uint64_t updates_failed = 0;     ///< Parse errors, read-only service, ...
  uint64_t triples_inserted = 0;   ///< Net inserts across all commits.
  uint64_t triples_deleted = 0;    ///< Net deletes across all commits.
  uint64_t store_version = 0;      ///< Highest version seen by a commit.
  double total_commit_ms = 0.0;

  double CacheHitRate() const {
    uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

class ServiceStats {
 public:
  ServiceStats() : start_(std::chrono::steady_clock::now()) {}

  void RecordSubmitted() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.submitted;
  }
  void RecordRejected() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.rejected;
  }

  /// One finished request: its status-derived outcome, metrics, end-to-end
  /// latency and whether the plan came from the cache.
  void RecordFinished(const Status& status, const ExecMetrics& metrics,
                      double latency_ms, bool cache_hit, size_t rows) {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      ++snap_.completed;
      snap_.rows_returned += rows;
    } else if (metrics.aborted) {
      switch (metrics.abort_reason) {
        case AbortReason::kDeadline: ++snap_.aborted_deadline; break;
        case AbortReason::kCancelled: ++snap_.aborted_cancelled; break;
        default: ++snap_.aborted_row_limit; break;
      }
    } else {
      ++snap_.failed;
    }
    if (cache_hit) {
      ++snap_.cache_hits;
    } else {
      ++snap_.cache_misses;
    }
    snap_.bgp.Merge(metrics.bgp);
    snap_.total_exec_ms += metrics.exec_ms;
    snap_.total_transform_ms += metrics.transform_ms;
    if (latencies_.size() < kMaxLatencySamples)
      latencies_.push_back(latency_ms);
  }

  void RecordUpdateSubmitted() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.updates_submitted;
  }

  /// One finished update request.
  void RecordUpdateFinished(const Status& status, const CommitStats& commit) {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      ++snap_.updates_committed;
      snap_.triples_inserted += commit.inserted;
      snap_.triples_deleted += commit.deleted;
      snap_.store_version = std::max(snap_.store_version, commit.version);
      snap_.total_commit_ms += commit.commit_ms;
    } else {
      ++snap_.updates_failed;
    }
  }

  ServiceStatsSnapshot Snapshot() const;

 private:
  /// Latency sample budget; enough for every bench/test workload here while
  /// bounding memory under sustained traffic (later PRs can move to a
  /// histogram).
  static constexpr size_t kMaxLatencySamples = 1 << 18;

  mutable std::mutex mu_;
  ServiceStatsSnapshot snap_;
  std::vector<double> latencies_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sparqluo
