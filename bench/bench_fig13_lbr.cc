// Figure 13: comparison with the state of the art — total response time of
// our `full` approach vs the LBR baseline [Atre, SIGMOD'15] on q2.1-q2.6,
// LUBM and DBpedia.
//
// Expected shape: full is faster than LBR on every query; the margin is
// larger on q2.4-q2.6 (high-selectivity anchors, where candidate pruning
// shines) than on q2.1-q2.3 (no selective anchor).
#include "baseline/lbr/lbr_engine.h"
#include "util/timer.h"
#include "bench_common.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

void Grid(Database& db, const std::vector<PaperQuery>& queries,
          const char* dataset) {
  std::printf("--- %s ---\n", dataset);
  std::printf("%-7s %12s %12s %10s %14s\n", "query", "LBR(ms)", "full(ms)",
              "speedup", "rows(each)");
  LbrEngine lbr(db.store(), db.dict());
  for (const PaperQuery& pq : queries) {
    if (pq.id.rfind("q2.", 0) != 0) continue;
    auto q = db.Parse(pq.sparql);
    if (!q.ok()) {
      std::printf("%-7s parse error\n", pq.id.c_str());
      continue;
    }
    Timer t;
    LbrMetrics lm;
    auto lbr_result = lbr.Execute(*q, &lm);
    double lbr_ms = t.ElapsedMillis();
    RunResult full = RunQuery(db, pq.sparql, ExecOptions::Full());
    if (lbr_result.ok() && full.ok) {
      std::printf("%-7s %12.1f %12.1f %9.1fx %7zu/%zu\n", pq.id.c_str(),
                  lbr_ms, full.total_ms,
                  full.total_ms > 0 ? lbr_ms / full.total_ms : 0.0,
                  lbr_result->size(), full.rows);
    } else {
      std::printf("%-7s %12s %12s\n", pq.id.c_str(),
                  lbr_result.ok() ? "ok" : "err", TimeCell(full).c_str());
    }
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sparqluo;
  using namespace sparqluo::bench;

  std::printf("Figure 13: full vs LBR on OPTIONAL queries\n\n");
  {
    auto db = MakeLubm(LubmUniversities(), EngineKind::kWco);
    Grid(*db, LubmPaperQueries(), "LUBM");
  }
  {
    auto db = MakeDbpedia(DbpediaArticles(), EngineKind::kWco);
    Grid(*db, DbpediaPaperQueries(), "DBpedia");
  }
  std::printf(
      "Expected shape: full beats LBR on all queries; larger margins on "
      "q2.4-q2.6\n(selective anchors) than q2.1-q2.3.\n");
  return 0;
}
