// Figure 12: scalability of the `full` approach — execution time of
// q1.1-q1.6 as the LUBM scale factor grows.
//
// The paper sweeps 0.5B/1B/1.5B/2B triples; we sweep the university count
// over ~an order of magnitude at laptop scale (override the list via
// argv). Expected shape: near-linear growth for every query, with the
// growth rate ordered by each query's result size.
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sparqluo;
  using namespace sparqluo::bench;

  std::vector<size_t> scales = {1, 2, 4, 8};
  if (argc > 1) {
    scales.clear();
    for (int i = 1; i < argc; ++i)
      scales.push_back(static_cast<size_t>(std::atol(argv[i])));
  }

  std::printf("Figure 12: full-approach execution time vs LUBM size\n\n");
  std::printf("%-8s %-12s", "scale", "triples");
  for (const PaperQuery& pq : LubmPaperQueries())
    if (pq.id.rfind("q1.", 0) == 0) std::printf(" %11s", pq.id.c_str());
  std::printf("\n");

  for (size_t scale : scales) {
    auto db = MakeLubm(scale, EngineKind::kWco);
    std::printf("%-8zu %-12zu", scale, db->size());
    for (const PaperQuery& pq : LubmPaperQueries()) {
      if (pq.id.rfind("q1.", 0) != 0) continue;
      RunResult r = RunQuery(*db, pq.sparql, ExecOptions::Full());
      std::printf(" %9sms", TimeCell(r).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: each column grows roughly linearly with the triple "
      "count;\nqueries with size-independent result sets (anchored on "
      "University0 entities)\ngrow slowest.\n");
  return 0;
}
