// Intra-query speedup benchmark for morsel-driven BGP execution.
//
// Runs the paper's 12-query workload through the executor at several
// parallelism degrees and reports per-query latency plus speedup relative
// to sequential execution (parallelism 1). Results are verified bag-equal
// to the sequential run before timing, so a reported speedup is never a
// wrong-answer speedup.
//
// Usage:
//   bench_parallel [--json FILE] [--parallelism 1,2,4,8] [--repeat N]
//                  [--datasets lubm,dbpedia] [--engines wco,hashjoin]
//                  [--lubm N] [--dbpedia N] [--morsel N]
//
// The recorded JSON includes `hardware_threads`: on a single-core container
// thread-scaling numbers are flat by construction, and the field is what
// distinguishes "no speedup available" from "no speedup achieved".
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/executor_pool.h"
#include "util/timer.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

struct Cell {
  std::string dataset;
  std::string engine;
  std::string query;
  size_t parallelism = 0;
  double ms = 0.0;        ///< Best-of-repeat wall time.
  double speedup = 1.0;   ///< Sequential ms / this ms.
  uint64_t morsels = 0;
  size_t rows = 0;
  bool ok = false;
};

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

void WriteJson(const std::vector<Cell>& cells, size_t morsel_size,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"parallel\",\n  \"hardware_threads\": "
      << std::thread::hardware_concurrency() << ",\n  \"morsel_size\": "
      << morsel_size << ",\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"dataset\": \"" << c.dataset << "\", \"engine\": \""
        << c.engine << "\", \"query\": \"" << c.query
        << "\", \"parallelism\": " << c.parallelism << ", \"ms\": " << c.ms
        << ", \"speedup\": " << c.speedup << ", \"morsels\": " << c.morsels
        << ", \"rows\": " << c.rows << ", \"ok\": " << (c.ok ? "true" : "false")
        << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "# wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<size_t> degrees = {1, 2, 4, 8};
  std::vector<std::string> datasets = {"lubm", "dbpedia"};
  std::vector<std::string> engines = {"wco", "hashjoin"};
  size_t repeat = 3;
  size_t lubm_universities = LubmUniversities();
  size_t dbpedia_articles = DbpediaArticles();
  size_t morsel_size = 1024;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--json" && (v = next())) {
      json_path = v;
    } else if (arg == "--parallelism" && (v = next())) {
      degrees.clear();
      for (const std::string& t : SplitList(v))
        degrees.push_back(static_cast<size_t>(std::atol(t.c_str())));
    } else if (arg == "--datasets" && (v = next())) {
      datasets = SplitList(v);
    } else if (arg == "--engines" && (v = next())) {
      engines = SplitList(v);
    } else if (arg == "--repeat" && (v = next())) {
      repeat = std::max<size_t>(1, static_cast<size_t>(std::atol(v)));
    } else if (arg == "--lubm" && (v = next())) {
      lubm_universities = static_cast<size_t>(std::atol(v));
    } else if (arg == "--dbpedia" && (v = next())) {
      dbpedia_articles = static_cast<size_t>(std::atol(v));
    } else if (arg == "--morsel" && (v = next())) {
      morsel_size = static_cast<size_t>(std::atol(v));
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }

  // Degree 1 always runs, and runs first: it is the reference every other
  // degree is verified against and scaled by. Without it, "speedup" and the
  // wrong-answer check would silently mean nothing.
  {
    std::vector<size_t> normalized{1};
    for (size_t d : degrees)
      if (d != 1) normalized.push_back(d);
    degrees = std::move(normalized);
  }

  size_t max_degree = 1;
  for (size_t d : degrees) max_degree = std::max(max_degree, d);
  ExecutorPool pool(max_degree > 1 ? max_degree - 1 : 1);

  std::vector<Cell> cells;
  std::printf("%-8s %-9s %-6s %12s %10s %9s %8s\n", "dataset", "engine",
              "query", "parallelism", "ms", "speedup", "morsels");
  for (const std::string& dataset : datasets) {
    const auto& workload =
        dataset == "lubm" ? LubmPaperQueries() : DbpediaPaperQueries();
    for (const std::string& engine : engines) {
      EngineKind kind =
          engine == "wco" ? EngineKind::kWco : EngineKind::kHashJoin;
      auto db = dataset == "lubm" ? MakeLubm(lubm_universities, kind)
                                  : MakeDbpedia(dbpedia_articles, kind);
      for (const PaperQuery& q : workload) {
        // Sequential reference: result + baseline latency.
        ExecOptions seq_opts = ExecOptions::Full();
        seq_opts.max_intermediate_rows = kRowLimit;
        double seq_ms = 0.0;
        Result<BindingSet> reference = Status::Internal("unset");
        for (size_t degree : degrees) {
          ExecOptions opts = seq_opts;
          opts.parallel.parallelism = degree;
          opts.parallel.morsel_size = morsel_size;
          opts.parallel.pool = degree > 1 ? &pool : nullptr;

          Cell cell;
          cell.dataset = dataset;
          cell.engine = engine;
          cell.query = q.id;
          cell.parallelism = degree;
          cell.ms = 1e300;
          for (size_t rep = 0; rep < repeat; ++rep) {
            ExecMetrics m;
            Timer timer;
            auto r = db->Query(q.sparql, opts, &m);
            double ms = timer.ElapsedMillis();
            cell.ms = std::min(cell.ms, ms);
            cell.morsels = m.bgp.morsels;
            cell.ok = r.ok();
            if (r.ok()) {
              cell.rows = r->size();
              if (degree == 1 && !reference.ok()) {
                reference = std::move(r);
              } else if (reference.ok() && !BagEquals(*r, *reference)) {
                std::cerr << "# MISMATCH: " << dataset << "/" << engine << "/"
                          << q.id << " at parallelism " << degree << "\n";
                cell.ok = false;
              }
            }
          }
          if (degree == 1) seq_ms = cell.ms;
          cell.speedup = cell.ms > 0.0 && seq_ms > 0.0 ? seq_ms / cell.ms : 1.0;
          std::printf("%-8s %-9s %-6s %12zu %10.2f %9.2f %8llu\n",
                      cell.dataset.c_str(), cell.engine.c_str(),
                      cell.query.c_str(), cell.parallelism, cell.ms,
                      cell.speedup,
                      static_cast<unsigned long long>(cell.morsels));
          std::fflush(stdout);
          cells.push_back(cell);
        }
      }
    }
  }
  if (!json_path.empty()) WriteJson(cells, morsel_size, json_path);
  return 0;
}
