// Table 2: dataset statistics (triples / entities / predicates / literals)
// for the generated LUBM and DBpedia-like datasets.
#include "bench_common.h"

int main() {
  using namespace sparqluo;
  using namespace sparqluo::bench;

  std::printf("Table 2: Datasets Statistics (generated, laptop scale)\n");
  std::printf("%-10s %14s %14s %12s %14s\n", "Dataset", "triples", "entities",
              "predicates", "literals");

  {
    auto db = MakeLubm(LubmUniversities(), EngineKind::kWco);
    const Statistics& st = db->stats();
    std::printf("%-10s %14llu %14llu %12llu %14llu\n", "LUBM",
                static_cast<unsigned long long>(st.num_triples()),
                static_cast<unsigned long long>(st.num_entities()),
                static_cast<unsigned long long>(st.num_predicates()),
                static_cast<unsigned long long>(st.num_literals()));
  }
  {
    auto db = MakeDbpedia(DbpediaArticles(), EngineKind::kWco);
    const Statistics& st = db->stats();
    std::printf("%-10s %14llu %14llu %12llu %14llu\n", "DBpedia",
                static_cast<unsigned long long>(st.num_triples()),
                static_cast<unsigned long long>(st.num_entities()),
                static_cast<unsigned long long>(st.num_predicates()),
                static_cast<unsigned long long>(st.num_literals()));
  }
  std::printf(
      "\nPaper reference (full scale): LUBM 534,355,247 triples; DBpedia "
      "830,030,460 triples.\nExpected shape: DBpedia has ~3 orders of "
      "magnitude more predicates than LUBM;\nliterals are a large minority "
      "of terms in both.\n");
  return 0;
}
