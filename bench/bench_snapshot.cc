// Cold-start benchmark: SPQLUO1 load+rebuild vs SPQLUO2 mapped load.
//
// For each LUBM scale the harness generates the dataset once, saves both
// snapshot formats, then measures wall time from "process has a file" to
// "finalized database answers queries": v1 pays parse + intern + three
// CSR permutation sorts, v2 pays CRC verification + an O(terms)
// dictionary decode and borrows the index arrays straight out of the
// mmap (plus a buffered-read mode for the no-mmap fallback path). A
// smoke query runs against every loaded database so no load path can
// quietly return an unusable store.
//
// Usage:
//   bench_snapshot [--json FILE] [--lubm N1,N2,...] [--repeat N]
//                  [--check-speedup]
//
// --check-speedup exits non-zero when the mapped v2 load is not faster
// than the v1 load+rebuild at every scale; CI runs it as the cold-start
// regression gate.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/snapshot.h"
#include "util/timer.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

struct ScaleResult {
  size_t universities = 0;
  size_t triples = 0;
  size_t terms = 0;
  double build_ms = 0.0;          ///< Generate-free baseline: Finalize cost.
  uint64_t v1_file_bytes = 0;
  uint64_t v2_file_bytes = 0;
  double v1_save_ms = 0.0;
  double v2_save_ms = 0.0;
  double v1_load_ms = 0.0;        ///< Load + Finalize (full rebuild).
  double v2_load_ms = 0.0;        ///< Load + Finalize, mmap mode.
  double v2_load_buffered_ms = 0.0;
  bool v2_mapped = false;
  double speedup = 0.0;           ///< v1_load_ms / v2_load_ms.
  size_t resident_index_bytes = 0;
};

const char* kSmokeQuery =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
    "SELECT ?x WHERE { ?x ub:headOf ?d }";

/// Loads `path` into a fresh database, finalizes, runs the smoke query,
/// and returns the best-of-`repeat` wall time for load + Finalize.
double TimeLoad(const std::string& path, size_t repeat, bool allow_mmap,
                bool* mapped_out, size_t* rows_out) {
  double best_ms = 1e300;
  for (size_t rep = 0; rep < repeat; ++rep) {
    Database db;
    SnapshotLoadOptions opts;
    opts.allow_mmap = allow_mmap;
    SnapshotLoadInfo info;
    Timer timer;
    Status st = LoadSnapshot(path, &db, opts, &info);
    if (!st.ok()) {
      std::cerr << "load failed: " << st.ToString() << "\n";
      std::exit(1);
    }
    db.Finalize(EngineKind::kWco);
    best_ms = std::min(best_ms, timer.ElapsedMillis());
    if (mapped_out != nullptr) *mapped_out = info.mapped;
    auto r = db.Query(kSmokeQuery);
    if (!r.ok()) {
      std::cerr << "smoke query failed: " << r.status().ToString() << "\n";
      std::exit(1);
    }
    if (rows_out != nullptr) *rows_out = r->size();
  }
  return best_ms;
}

uint64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.is_open() ? static_cast<uint64_t>(in.tellg()) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<size_t> scales = {1, 5, 13};
  size_t repeat = 3;
  bool check_speedup = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--json" && (v = next())) {
      json_path = v;
    } else if (arg == "--lubm" && (v = next())) {
      scales.clear();
      std::string list = v;
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        scales.push_back(
            static_cast<size_t>(std::atol(list.substr(pos, comma - pos).c_str())));
        pos = comma + 1;
      }
    } else if (arg == "--repeat" && (v = next())) {
      repeat = std::max<size_t>(1, static_cast<size_t>(std::atol(v)));
    } else if (arg == "--check-speedup") {
      check_speedup = true;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }

  const std::string dir = "bench_snapshot_tmp";
  const std::string v1_path = dir + ".v1.snapshot";
  const std::string v2_path = dir + ".v2.snapshot";

  std::vector<ScaleResult> results;
  bool gate_failed = false;
  std::printf("%-6s %10s %12s %12s %12s %12s %8s\n", "lubm", "triples",
              "v1 load ms", "v2 load ms", "v2 buf ms", "v2 bytes", "speedup");
  for (size_t universities : scales) {
    ScaleResult r;
    r.universities = universities;

    auto db = std::make_unique<Database>();
    LubmConfig cfg;
    cfg.universities = universities;
    GenerateLubm(cfg, db.get());
    {
      Timer t;
      db->Finalize(EngineKind::kWco);
      r.build_ms = t.ElapsedMillis();
    }
    r.triples = db->size();
    r.terms = db->dict().size();
    r.resident_index_bytes = db->store().IndexBytes();
    {
      Timer t;
      Status st = SaveSnapshot(*db, v1_path, SnapshotFormat::kV1);
      r.v1_save_ms = t.ElapsedMillis();
      if (!st.ok()) {
        std::cerr << "v1 save failed: " << st.ToString() << "\n";
        return 1;
      }
    }
    {
      Timer t;
      Status st = SaveSnapshot(*db, v2_path, SnapshotFormat::kV2);
      r.v2_save_ms = t.ElapsedMillis();
      if (!st.ok()) {
        std::cerr << "v2 save failed: " << st.ToString() << "\n";
        return 1;
      }
    }
    db.reset();  // The loads below must be genuine cold starts.
    r.v1_file_bytes = FileBytes(v1_path);
    r.v2_file_bytes = FileBytes(v2_path);

    size_t v1_rows = 0, v2_rows = 0;
    r.v1_load_ms = TimeLoad(v1_path, repeat, /*allow_mmap=*/true, nullptr,
                            &v1_rows);
    r.v2_load_ms =
        TimeLoad(v2_path, repeat, /*allow_mmap=*/true, &r.v2_mapped, &v2_rows);
    r.v2_load_buffered_ms =
        TimeLoad(v2_path, repeat, /*allow_mmap=*/false, nullptr, nullptr);
    if (v1_rows != v2_rows) {
      std::cerr << "smoke query disagrees across formats: " << v1_rows
                << " vs " << v2_rows << " rows\n";
      return 1;
    }
    r.speedup = r.v2_load_ms > 0.0 ? r.v1_load_ms / r.v2_load_ms : 0.0;

    std::printf("%-6zu %10zu %12.1f %12.1f %12.1f %12llu %7.1fx\n",
                r.universities, r.triples, r.v1_load_ms, r.v2_load_ms,
                r.v2_load_buffered_ms,
                static_cast<unsigned long long>(r.v2_file_bytes), r.speedup);
    if (check_speedup && r.v2_load_ms >= r.v1_load_ms) {
      std::fprintf(stderr,
                   "# FAIL: v2 load (%.1f ms) is not faster than v1 "
                   "load+rebuild (%.1f ms) at lubm %zu\n",
                   r.v2_load_ms, r.v1_load_ms, universities);
      gate_failed = true;
    }
    results.push_back(r);
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"snapshot\",\n  \"hardware_threads\": "
        << std::thread::hardware_concurrency() << ",\n  \"repeat\": " << repeat
        << ",\n  \"runs\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const ScaleResult& r = results[i];
      out << "    {\"lubm_universities\": " << r.universities
          << ", \"store_triples\": " << r.triples
          << ", \"dict_terms\": " << r.terms
          << ", \"finalize_build_ms\": " << r.build_ms
          << ",\n     \"v1_file_bytes\": " << r.v1_file_bytes
          << ", \"v2_file_bytes\": " << r.v2_file_bytes
          << ", \"v1_save_ms\": " << r.v1_save_ms
          << ", \"v2_save_ms\": " << r.v2_save_ms
          << ",\n     \"v1_load_ms\": " << r.v1_load_ms
          << ", \"v2_load_ms\": " << r.v2_load_ms
          << ", \"v2_load_buffered_ms\": " << r.v2_load_buffered_ms
          << ", \"v2_mapped\": " << (r.v2_mapped ? "true" : "false")
          << ", \"speedup_v1_over_v2\": " << r.speedup
          << ",\n     \"resident_index_bytes\": " << r.resident_index_bytes
          << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cerr << "# wrote " << json_path << "\n";
  }
  return gate_failed ? 1 : 0;
}
