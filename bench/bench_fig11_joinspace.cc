// Figure 11: execution time and join space JS of q1.1-q1.6 under all four
// approaches, on LUBM and DBpedia (gStore-WCO host).
//
// JS(P) estimates the largest materialized intermediate result (§7.1):
// BGP -> actual result size, AND/OPTIONAL -> product, UNION -> sum.
//
// Expected shape: time and JS trend together; JS(TT), JS(CP) <= JS(base);
// full has the smallest join space overall.
#include "bench_common.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

void Grid(Database& db, const std::vector<PaperQuery>& queries,
          const char* dataset) {
  std::printf("--- %s ---\n", dataset);
  std::printf("%-7s %-6s %12s %16s\n", "query", "mode", "time(ms)", "JS");
  for (const PaperQuery& pq : queries) {
    if (pq.id.rfind("q1.", 0) != 0) continue;
    struct {
      const char* name;
      ExecOptions opts;
    } modes[] = {{"base", ExecOptions::Base()},
                 {"TT", ExecOptions::TT()},
                 {"CP", ExecOptions::CP()},
                 {"full", ExecOptions::Full()}};
    for (auto& mode : modes) {
      RunResult r = RunQuery(db, pq.sparql, mode.opts);
      if (r.ok) {
        std::printf("%-7s %-6s %12s %16.3e\n", pq.id.c_str(), mode.name,
                    TimeCell(r).c_str(), r.join_space);
      } else {
        std::printf("%-7s %-6s %12s %16s\n", pq.id.c_str(), mode.name,
                    TimeCell(r).c_str(), "-");
      }
      std::fflush(stdout);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sparqluo;
  using namespace sparqluo::bench;

  std::printf("Figure 11: Execution time and join space (JS) per approach\n\n");
  {
    auto db = MakeLubm(LubmUniversities(), EngineKind::kWco);
    Grid(*db, LubmPaperQueries(), "LUBM");
  }
  {
    auto db = MakeDbpedia(DbpediaArticles(), EngineKind::kWco);
    Grid(*db, DbpediaPaperQueries(), "DBpedia");
  }
  std::printf(
      "Expected shape: JS(full) <= JS(TT), JS(CP) <= JS(base) on every "
      "query, and\nexecution time tracks join space.\n");
  return 0;
}
