// Shared machinery for the experiment-reproduction benchmark binaries.
//
// Scale note (DESIGN.md): the paper runs LUBM at 0.5-2 B triples and
// DBpedia V3.9 (830M). These harnesses reproduce every experiment's
// *shape* at laptop scale — LUBM scale factors of a few universities
// (~100k triples each) and a DBpedia-like graph of a few hundred thousand
// triples. Relative comparisons (who wins, by what factor) are the
// reproduction target, not absolute times.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "engine/database.h"
#include "workload/dbpedia_generator.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

namespace sparqluo::bench {

/// Default scales, overridable via environment variables
/// SPARQLUO_LUBM_UNIVERSITIES / SPARQLUO_DBPEDIA_ARTICLES.
inline size_t LubmUniversities() {
  const char* env = std::getenv("SPARQLUO_LUBM_UNIVERSITIES");
  // >= 13 so that queries anchored on University12 (q2.5, q2.6) bind.
  return env != nullptr ? static_cast<size_t>(std::atol(env)) : 13;
}
inline size_t DbpediaArticles() {
  const char* env = std::getenv("SPARQLUO_DBPEDIA_ARTICLES");
  return env != nullptr ? static_cast<size_t>(std::atol(env)) : 30000;
}

/// Intermediate-row guard standing in for the paper's OOM condition.
inline constexpr size_t kRowLimit = 8000000;

inline std::unique_ptr<Database> MakeLubm(size_t universities,
                                          EngineKind kind) {
  auto db = std::make_unique<Database>();
  LubmConfig cfg;
  cfg.universities = universities;
  GenerateLubm(cfg, db.get());
  db->Finalize(kind);
  return db;
}

inline std::unique_ptr<Database> MakeDbpedia(size_t articles,
                                             EngineKind kind) {
  auto db = std::make_unique<Database>();
  DbpediaConfig cfg;
  cfg.articles = articles;
  GenerateDbpedia(cfg, db.get());
  db->Finalize(kind);
  return db;
}

struct RunResult {
  bool ok = false;
  bool oom = false;
  double total_ms = 0.0;
  double transform_ms = 0.0;
  double join_space = 0.0;
  size_t rows = 0;
};

/// Runs one query under one approach with the row-limit guard.
inline RunResult RunQuery(Database& db, const std::string& sparql,
                          ExecOptions opts) {
  opts.max_intermediate_rows = kRowLimit;
  ExecMetrics m;
  RunResult out;
  auto r = db.Query(sparql, opts, &m);
  out.transform_ms = m.transform_ms;
  out.total_ms = m.transform_ms + m.exec_ms;
  out.join_space = m.join_space;
  if (r.ok()) {
    out.ok = true;
    out.rows = r->size();
  } else if (r.status().code() == StatusCode::kResourceExhausted) {
    out.oom = true;
  }
  return out;
}

/// Formats a time cell; OOM cells mirror the paper's absent bars.
inline std::string TimeCell(const RunResult& r) {
  if (r.oom) return "OOM";
  if (!r.ok) return "err";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", r.total_ms);
  return buf;
}

}  // namespace sparqluo::bench
