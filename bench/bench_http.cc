// Closed-loop load benchmark for the networked SPARQL endpoint.
//
// Starts an in-process SparqlEndpoint over a LUBM store, then drives it
// through real TCP connections (the blocking test client from
// tests/http_client.h) at several concurrency levels: each level keeps N
// keep-alive connections in flight, with a pool of driver threads
// batch-sending and batch-reading across their connection sets. Reported
// per level: aggregate QPS and p50/p99/p999 end-to-end request latency
// (send start to response fully read).
//
// Usage:
//   bench_http [--json FILE] [--connections 100,1000,5000]
//              [--duration-ms 2000] [--lubm N] [--threads N]
//              [--client-threads N] [--smoke] [--min-qps QPS]
//
// --smoke shrinks the run to one 100-connection level over LUBM(1) and
// enforces --min-qps (default 500) as a CI regression gate. Concurrency
// levels above the process fd limit are skipped with a note.
// BENCH_http.json schema: docs/benchmarks.md.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../tests/http_client.h"
#include "bench_common.h"
#include "server/query_service.h"
#include "server/sparql_endpoint.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;
using Clock = std::chrono::steady_clock;

struct LevelResult {
  size_t connections = 0;
  size_t requests = 0;
  size_t errors = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

std::vector<size_t> ParseList(const std::string& csv) {
  std::vector<size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(static_cast<size_t>(std::atol(item.c_str())));
  return out;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// One driver thread's share of the connection set: connect + one warmup
/// round, rendezvous at the start barrier, then until the deadline send a
/// request on every connection and collect every response, measuring each
/// round-trip individually. Closed-loop: each connection always has
/// exactly one request outstanding.
void DriveConnections(uint16_t port, size_t connections,
                      const std::string& request,
                      std::atomic<size_t>* ready,
                      const std::atomic<bool>* go,
                      const Clock::time_point* deadline_ptr,
                      size_t* requests_out, size_t* errors_out,
                      std::vector<double>* latencies_out) {
  std::vector<std::unique_ptr<testhttp::TestHttpClient>> conns;
  conns.reserve(connections);
  for (size_t i = 0; i < connections; ++i) {
    auto c = std::make_unique<testhttp::TestHttpClient>(port);
    if (!c->connected()) {
      ++*errors_out;
      continue;
    }
    conns.push_back(std::move(c));
  }
  // Warmup round (also primes the server's plan cache), off the clock.
  for (auto& c : conns) {
    if (!c->Request(request).ok) ++*errors_out;
  }
  ready->fetch_add(1);
  while (!go->load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Clock::time_point deadline = *deadline_ptr;
  std::vector<Clock::time_point> sent(conns.size());
  while (Clock::now() < deadline) {
    for (size_t i = 0; i < conns.size(); ++i) {
      sent[i] = Clock::now();
      if (!conns[i]->SendRaw(request)) ++*errors_out;
    }
    for (size_t i = 0; i < conns.size(); ++i) {
      testhttp::Response r = conns[i]->ReadResponse(30000);
      if (r.ok && r.status == 200) {
        ++*requests_out;
        latencies_out->push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - sent[i])
                .count());
      } else {
        ++*errors_out;
      }
    }
  }
}

LevelResult RunLevel(uint16_t port, size_t connections, size_t client_threads,
                     const std::string& request, double duration_ms) {
  size_t threads = std::min(client_threads, connections);
  std::vector<size_t> requests(threads, 0), errors(threads, 0);
  std::vector<std::vector<double>> latencies(threads);
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  Clock::time_point deadline;
  std::vector<std::thread> pool;
  for (size_t t = 0; t < threads; ++t) {
    size_t share = connections / threads + (t < connections % threads ? 1 : 0);
    pool.emplace_back(DriveConnections, port, share, std::cref(request),
                      &ready, &go, &deadline, &requests[t], &errors[t],
                      &latencies[t]);
  }
  // Wait until every thread is connected and warmed up, then start the
  // clock for all of them at once.
  while (ready.load() < threads)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Clock::time_point start = Clock::now();
  deadline = start + std::chrono::microseconds(
                         static_cast<int64_t>(duration_ms * 1000.0));
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  LevelResult result;
  result.connections = connections;
  result.wall_ms = wall_ms;
  std::vector<double> all;
  for (size_t t = 0; t < threads; ++t) {
    result.requests += requests[t];
    result.errors += errors[t];
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
  }
  std::sort(all.begin(), all.end());
  result.qps = wall_ms > 0 ? 1000.0 * static_cast<double>(result.requests) /
                                 wall_ms
                           : 0.0;
  result.p50_ms = Percentile(all, 0.50);
  result.p99_ms = Percentile(all, 0.99);
  result.p999_ms = Percentile(all, 0.999);
  return result;
}

size_t FdLimit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  return static_cast<size_t>(lim.rlim_cur);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_http.json";
  std::string connections_csv = "100,1000,5000";
  double duration_ms = 2000.0;
  size_t lubm = 1;
  size_t server_threads = 0;  // 0 = hardware concurrency
  size_t client_threads = 8;
  bool smoke = false;
  double min_qps = 0.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--json") json_path = next();
    else if (arg == "--connections") connections_csv = next();
    else if (arg == "--duration-ms") duration_ms = std::atof(next());
    else if (arg == "--lubm") lubm = static_cast<size_t>(std::atol(next()));
    else if (arg == "--threads") server_threads = static_cast<size_t>(std::atol(next()));
    else if (arg == "--client-threads") client_threads = static_cast<size_t>(std::atol(next()));
    else if (arg == "--smoke") smoke = true;
    else if (arg == "--min-qps") min_qps = std::atof(next());
    else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (smoke) {
    connections_csv = "100";
    if (min_qps <= 0.0) min_qps = 500.0;
  }

  std::cerr << "# building LUBM(" << lubm << ")...\n";
  auto db = MakeLubm(lubm, EngineKind::kWco);

  QueryService::Options sopts;
  sopts.num_threads = server_threads;
  sopts.max_queue = 8192;
  QueryService service(*db, sopts);
  SparqlEndpoint::Options eopts;
  SparqlEndpoint endpoint(service, db->dict(), eopts);
  Status started = endpoint.Start();
  if (!started.ok()) {
    std::cerr << "endpoint start failed: " << started.ToString() << "\n";
    return 1;
  }

  // A selective plan-cache-friendly query (a few dozen rows): the level
  // measures protocol + service overhead, not join evaluation.
  const std::string query =
      "SELECT ?x WHERE { ?x "
      "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#headOf> ?d }";
  std::string request = "GET /sparql?query=" + testhttp::UrlEncode(query) +
                        " HTTP/1.1\r\nHost: bench\r\n"
                        "Accept: application/sparql-results+json\r\n\r\n";

  size_t fd_budget = FdLimit();
  std::vector<LevelResult> results;
  bool gate_failed = false;
  for (size_t connections : ParseList(connections_csv)) {
    // Client fds + server fds for the same connections + headroom.
    if (2 * connections + 64 > fd_budget) {
      std::cerr << "# skipping " << connections << " connections (fd limit "
                << fd_budget << ")\n";
      continue;
    }
    LevelResult r =
        RunLevel(endpoint.port(), connections, client_threads, request,
                 duration_ms);
    std::cerr << "# connections=" << r.connections << " requests="
              << r.requests << " errors=" << r.errors << " qps="
              << static_cast<size_t>(r.qps) << " p50=" << r.p50_ms
              << "ms p99=" << r.p99_ms << "ms p999=" << r.p999_ms << "ms\n";
    if (min_qps > 0.0 && r.qps < min_qps) {
      std::cerr << "# FAIL: qps " << r.qps << " below gate " << min_qps
                << "\n";
      gate_failed = true;
    }
    if (r.errors > r.requests / 100) {
      std::cerr << "# FAIL: error rate above 1%\n";
      gate_failed = true;
    }
    results.push_back(r);
  }
  endpoint.Stop();
  service.Shutdown();

  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"http\",\n  \"config\": {\n"
      << "    \"lubm_universities\": " << lubm << ",\n"
      << "    \"duration_ms\": " << duration_ms << ",\n"
      << "    \"client_threads\": " << client_threads << ",\n"
      << "    \"query\": \"?x ub:headOf ?d\"\n"
      << "  },\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    out << "    {\"connections\": " << r.connections << ", \"requests\": "
        << r.requests << ", \"errors\": " << r.errors << ", \"wall_ms\": "
        << r.wall_ms << ", \"qps\": " << r.qps << ", \"p50_ms\": " << r.p50_ms
        << ", \"p99_ms\": " << r.p99_ms << ", \"p999_ms\": " << r.p999_ms
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "# wrote " << json_path << "\n";
  return gate_failed ? 1 : 0;
}
