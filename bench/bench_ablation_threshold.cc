// Ablation: candidate-pruning threshold sensitivity (DESIGN.md ablation
// index). Sweeps the fixed threshold fraction on the CP approach and
// contrasts with the adaptive threshold used by `full`, on the nested
// OPTIONAL queries where pruning matters most (q1.3, q1.4 on LUBM).
#include "bench_common.h"

int main() {
  using namespace sparqluo;
  using namespace sparqluo::bench;

  auto db = MakeLubm(LubmUniversities(), EngineKind::kWco);
  std::printf(
      "Candidate-pruning threshold ablation (LUBM, %zu triples)\n\n",
      db->size());
  std::printf("%-7s %-14s %12s %14s\n", "query", "threshold", "time(ms)",
              "rows");

  for (const char* id : {"q1.3", "q1.4", "q2.4", "q2.6"}) {
    const PaperQuery* pq = FindQuery(LubmPaperQueries(), id);
    if (pq == nullptr) continue;
    // No pruning at all.
    {
      RunResult r = RunQuery(*db, pq->sparql, ExecOptions::Base());
      std::printf("%-7s %-14s %12s %14zu\n", id, "off(base)",
                  TimeCell(r).c_str(), r.rows);
    }
    for (double frac : {0.0001, 0.001, 0.01, 0.1}) {
      ExecOptions opts = ExecOptions::CP();
      opts.fixed_threshold_fraction = frac;
      RunResult r = RunQuery(*db, pq->sparql, opts);
      char label[32];
      std::snprintf(label, sizeof(label), "fixed %.2f%%", frac * 100);
      std::printf("%-7s %-14s %12s %14zu\n", id, label, TimeCell(r).c_str(),
                  r.rows);
    }
    {
      RunResult r = RunQuery(*db, pq->sparql, ExecOptions::Full());
      std::printf("%-7s %-14s %12s %14zu\n", id, "adaptive(full)",
                  TimeCell(r).c_str(), r.rows);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "Expected shape: result counts identical across thresholds "
      "(correctness);\ntoo-small thresholds disable pruning (time ~= base), "
      "larger ones approach the\nadaptive setting.\n");
  return 0;
}
