// Result-cache, dedup and adaptive-engine benchmark.
//
// Three sections over in-process QueryService instances:
//
//   1. hit vs miss latency: every LUBM paper query is run cold (result-
//      cache miss: parse + plan + execute) and then repeatedly warm
//      (result-cache hit: a rows copy), reporting per-query and aggregate
//      medians. The --smoke gate asserts aggregate hit latency is below
//      aggregate miss latency — the cache must actually be a shortcut.
//   2. dedup fan-in: one leader plus N-1 identical concurrent submissions
//      of a transitive-closure query; reports how many were deduped and
//      the wall time for all N relative to one execution.
//   3. adaptive engine: the paper workload cold through fixed-WCO,
//      fixed-hash-join and adaptive services, reporting summed engine
//      execution time and the adaptive engine's per-BGP choice counts.
//
// Usage:
//   bench_result_cache [--json FILE] [--lubm N] [--repeats K]
//                      [--fan-in N] [--chain N] [--smoke]
//
// --smoke shrinks to LUBM(1), 3 repeats, fan-in 16, and enforces the
// hit < miss gate (exit 1 on failure).
// BENCH_result_cache.json schema: docs/benchmarks.md.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/query_service.h"
#include "workload/paper_queries.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct QueryLatency {
  std::string id;
  size_t rows = 0;
  double miss_ms = 0.0;  ///< Cold run: parse + plan + execute.
  double hit_ms = 0.0;   ///< Median warm run: result-cache copy.
};

std::string ChainNTriples(int n) {
  std::string nt;
  for (int i = 0; i < n; ++i)
    nt += "<http://ex.org/n" + std::to_string(i) + "> <http://ex.org/knows> " +
          "<http://ex.org/n" + std::to_string(i + 1) + "> .\n";
  return nt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_result_cache.json";
  size_t lubm = LubmUniversities();
  size_t repeats = 9;
  size_t fan_in = 64;
  int chain = 1500;
  bool smoke = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--json") json_path = next();
    else if (arg == "--lubm") lubm = static_cast<size_t>(std::atol(next()));
    else if (arg == "--repeats") repeats = static_cast<size_t>(std::atol(next()));
    else if (arg == "--fan-in") fan_in = static_cast<size_t>(std::atol(next()));
    else if (arg == "--chain") chain = static_cast<int>(std::atol(next()));
    else if (arg == "--smoke") smoke = true;
    else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (smoke) {
    lubm = 1;
    repeats = 3;
    fan_in = 16;
  }
  bool gate_failed = false;

  // --- 1. hit vs miss latency -------------------------------------------
  std::cerr << "# building LUBM(" << lubm << ")...\n";
  auto db = MakeLubm(lubm, EngineKind::kWco);
  const auto& workload = LubmPaperQueries();

  std::vector<QueryLatency> latencies;
  {
    QueryService::Options sopts;
    sopts.num_threads = 2;
    QueryService service(static_cast<const Database&>(*db), sopts);
    for (const PaperQuery& q : workload) {
      QueryLatency lat;
      lat.id = q.id;
      ExecOptions exec = ExecOptions::Full();
      exec.max_intermediate_rows = kRowLimit;

      Clock::time_point start = Clock::now();
      QueryRequest cold;
      cold.text = q.sparql;
      cold.options = exec;
      QueryResponse r = service.Submit(std::move(cold)).get();
      lat.miss_ms = MsSince(start);
      if (!r.status.ok()) continue;  // row-limit-guarded heavy queries
      lat.rows = r.rows.size();

      std::vector<double> warm;
      for (size_t k = 0; k < repeats; ++k) {
        start = Clock::now();
        QueryRequest req;
        req.text = q.sparql;
        req.options = exec;
        QueryResponse w = service.Submit(std::move(req)).get();
        warm.push_back(MsSince(start));
        if (!w.result_cache_hit) {
          std::cerr << "# FAIL: warm run of " << q.id
                    << " was not a result-cache hit\n";
          gate_failed = true;
        }
      }
      lat.hit_ms = Median(warm);
      latencies.push_back(lat);
      std::cerr << "# " << lat.id << " rows=" << lat.rows << " miss="
                << lat.miss_ms << "ms hit=" << lat.hit_ms << "ms\n";
    }
  }
  double total_miss = 0.0, total_hit = 0.0;
  for (const QueryLatency& l : latencies) {
    total_miss += l.miss_ms;
    total_hit += l.hit_ms;
  }
  std::cerr << "# aggregate miss=" << total_miss << "ms hit=" << total_hit
            << "ms (" << latencies.size() << " queries)\n";
  if (smoke && !(total_hit < total_miss)) {
    std::cerr << "# FAIL: aggregate hit latency " << total_hit
              << "ms not below miss latency " << total_miss << "ms\n";
    gate_failed = true;
  }

  // --- 2. dedup fan-in ---------------------------------------------------
  Database chain_db;
  if (!chain_db.LoadNTriplesString(ChainNTriples(chain)).ok()) return 1;
  chain_db.Finalize(EngineKind::kWco);
  const std::string closure =
      "SELECT ?x ?y WHERE { ?x <http://ex.org/knows>+ ?y }";

  double solo_ms = 0.0, fanin_ms = 0.0;
  uint64_t deduped = 0, executions = 0;
  uint64_t dedup_followers = 0, rc_hits = 0, rc_oversize = 0;
  {
    QueryService::Options sopts;
    sopts.num_threads = 8;
    QueryService service(static_cast<const Database&>(chain_db), sopts);

    // Reference: one execution, nothing to join.
    Clock::time_point start = Clock::now();
    QueryRequest solo;
    solo.text = closure;
    QueryResponse r = service.Submit(std::move(solo)).get();
    solo_ms = MsSince(start);
    if (!r.status.ok()) return 1;

    // Leader + (fan_in - 1) identical submissions against a fresh service
    // (empty caches). The pool is sized to the fan-in so every follower
    // can wait on the leader concurrently — a smaller pool queues the
    // overflow behind the leader and measures a second round instead.
    QueryService::Options fresh_opts;
    fresh_opts.num_threads = fan_in;
    QueryService fresh(static_cast<const Database&>(chain_db), fresh_opts);
    start = Clock::now();
    std::vector<std::future<QueryResponse>> futures;
    QueryRequest leader;
    leader.text = closure;
    futures.push_back(fresh.Submit(std::move(leader)));
    while (fresh.CacheStats().misses < 1)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    for (size_t i = 1; i < fan_in; ++i) {
      QueryRequest req;
      req.text = closure;
      futures.push_back(fresh.Submit(std::move(req)));
    }
    for (auto& f : futures) {
      QueryResponse resp = f.get();
      if (!resp.status.ok()) return 1;
      if (!resp.deduped && !resp.result_cache_hit) ++executions;
    }
    fanin_ms = MsSince(start);
    ServiceStatsSnapshot stats = fresh.Stats();
    deduped = stats.deduped;
    dedup_followers = stats.dedup_followers;
    rc_hits = stats.result_cache_hits;
    rc_oversize = fresh.ResultCacheStats().oversize;
  }
  std::cerr << "# dedup: fan_in=" << fan_in << " solo=" << solo_ms
            << "ms all=" << fanin_ms << "ms deduped=" << deduped
            << " executions=" << executions << "\n";
  std::cerr << "# dedup-debug: followers=" << dedup_followers
            << " rc_hits=" << rc_hits << " rc_oversize=" << rc_oversize
            << "\n";
  if (smoke && executions != 1) {
    std::cerr << "# FAIL: " << executions
              << " executions for identical concurrent queries\n";
    gate_failed = true;
  }

  // --- 3. adaptive engine ------------------------------------------------
  struct EngineRun {
    std::string name;
    double exec_ms = 0.0;
    uint64_t wco_evals = 0;
    uint64_t hashjoin_evals = 0;
  };
  std::vector<EngineRun> engines;
  for (EngineKind kind :
       {EngineKind::kWco, EngineKind::kHashJoin, EngineKind::kAdaptive}) {
    auto edb = MakeLubm(lubm, kind);
    QueryService::Options sopts;
    sopts.num_threads = 2;
    sopts.enable_result_cache = false;  // measure execution, not the cache
    QueryService service(static_cast<const Database&>(*edb), sopts);
    EngineRun run;
    run.name = EngineKindName(kind);
    for (const PaperQuery& q : workload) {
      ExecOptions exec = ExecOptions::Full();
      exec.max_intermediate_rows = kRowLimit;
      QueryRequest req;
      req.text = q.sparql;
      req.options = exec;
      QueryResponse r = service.Submit(std::move(req)).get();
      if (r.status.ok()) run.exec_ms += r.metrics.exec_ms;
    }
    ServiceStatsSnapshot stats = service.Stats();
    run.wco_evals = stats.bgp.wco_evals;
    run.hashjoin_evals = stats.bgp.hashjoin_evals;
    std::cerr << "# engine=" << run.name << " exec=" << run.exec_ms
              << "ms wco_evals=" << run.wco_evals << " hashjoin_evals="
              << run.hashjoin_evals << "\n";
    engines.push_back(run);
  }

  // --- JSON ---------------------------------------------------------------
  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"result_cache\",\n  \"config\": {\n"
      << "    \"lubm_universities\": " << lubm << ",\n"
      << "    \"repeats\": " << repeats << ",\n"
      << "    \"fan_in\": " << fan_in << ",\n"
      << "    \"chain\": " << chain << "\n"
      << "  },\n  \"latency\": [\n";
  for (size_t i = 0; i < latencies.size(); ++i) {
    const QueryLatency& l = latencies[i];
    out << "    {\"id\": \"" << l.id << "\", \"rows\": " << l.rows
        << ", \"miss_ms\": " << l.miss_ms << ", \"hit_ms\": " << l.hit_ms
        << "}" << (i + 1 < latencies.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"latency_total\": {\"miss_ms\": " << total_miss
      << ", \"hit_ms\": " << total_hit << "},\n"
      << "  \"dedup\": {\"fan_in\": " << fan_in << ", \"solo_ms\": "
      << solo_ms << ", \"all_ms\": " << fanin_ms << ", \"deduped\": "
      << deduped << ", \"executions\": " << executions << "},\n"
      << "  \"engines\": [\n";
  for (size_t i = 0; i < engines.size(); ++i) {
    const EngineRun& e = engines[i];
    out << "    {\"engine\": \"" << e.name << "\", \"exec_ms\": " << e.exec_ms
        << ", \"wco_evals\": " << e.wco_evals << ", \"hashjoin_evals\": "
        << e.hashjoin_evals << "}" << (i + 1 < engines.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "# wrote " << json_path << "\n";
  return gate_failed ? 1 : 0;
}
