// Versioned-update benchmark: commit latency, reader throughput under a
// live writer, and post-commit scan overhead.
//
// Three experiments over a LUBM base store:
//
//   commit    — commit latency vs. batch size: stage N inserts, Commit(),
//               report the merge+stats+engine+publish cost (and the pure
//               delta-merge share). Copy-on-write compaction is linear in
//               |base| + |delta| log |delta|, so latency should be flat-ish
//               in N until the delta dominates.
//   qps       — reader QPS with and without a concurrent writer committing
//               batches in a loop (snapshot isolation: readers never block;
//               the cost they see is plan-cache misses after each commit
//               plus version churn).
//   overhead  — query latency on a store that reached its state through K
//               commits vs. a store built from scratch with the same net
//               triples (should be ~1.0x: commits compact, so post-commit
//               reads pay no delta-merge tax).
//
// Usage:
//   bench_updates [--json FILE] [--lubm N] [--batch-sizes 100,1000,10000]
//                 [--commits K] [--duration-ms D] [--engine wco|hashjoin]
//
// The recorded JSON includes `hardware_threads` (see docs/benchmarks.md:
// on a 1-thread container, reader/writer concurrency interleaves rather
// than overlaps, which depresses the `qps` cells but not `commit` or
// `overhead`).
#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/query_service.h"
#include "store/update.h"
#include "util/timer.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

std::vector<size_t> SplitSizes(const std::string& csv) {
  std::vector<size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(static_cast<size_t>(std::atol(item.c_str())));
  return out;
}

Term SyntheticSubject(size_t i) {
  return Term::Iri("http://bench.sparqluo/upd/s" + std::to_string(i));
}

/// A batch of `n` fresh triples (new subjects attached to existing LUBM
/// vocabulary so queries can reach them).
UpdateBatch MakeInsertBatch(size_t n, size_t* counter) {
  UpdateBatch batch;
  Term pred = Term::Iri("http://bench.sparqluo/upd/links");
  for (size_t i = 0; i < n; ++i) {
    size_t id = (*counter)++;
    batch.Insert(SyntheticSubject(id), pred, SyntheticSubject(id / 7));
  }
  return batch;
}

struct CommitCell {
  size_t batch_size = 0;
  double commit_ms = 0.0;     ///< Full commit (merge+stats+engine+publish).
  double stage_ms = 0.0;      ///< Dictionary interning + delta replay.
  size_t store_size = 0;
  uint64_t version = 0;
};

struct QpsCell {
  std::string scenario;  ///< "read_only" or "with_writer".
  size_t reader_threads = 0;
  size_t queries = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t commits = 0;  ///< Versions published during the window.
};

struct OverheadCell {
  std::string query;
  double committed_ms = 0.0;  ///< On the store that went through K commits.
  double rebuilt_ms = 0.0;    ///< On a from-scratch store, same net triples.
  double ratio = 1.0;
  size_t rows_committed = 0;
  size_t rows_rebuilt = 0;
};

void WriteJson(const std::vector<CommitCell>& commits,
               const std::vector<QpsCell>& qps,
               const std::vector<OverheadCell>& overhead, size_t lubm,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"updates\",\n  \"hardware_threads\": "
      << std::thread::hardware_concurrency() << ",\n  \"lubm_universities\": "
      << lubm << ",\n  \"commit_latency\": [\n";
  for (size_t i = 0; i < commits.size(); ++i) {
    const CommitCell& c = commits[i];
    out << "    {\"batch_size\": " << c.batch_size << ", \"commit_ms\": "
        << c.commit_ms << ", \"stage_ms\": " << c.stage_ms
        << ", \"store_size\": " << c.store_size << ", \"version\": "
        << c.version << "}" << (i + 1 < commits.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"reader_qps\": [\n";
  for (size_t i = 0; i < qps.size(); ++i) {
    const QpsCell& c = qps[i];
    out << "    {\"scenario\": \"" << c.scenario << "\", \"reader_threads\": "
        << c.reader_threads << ", \"queries\": " << c.queries
        << ", \"qps\": " << c.qps << ", \"p50_ms\": " << c.p50_ms
        << ", \"p99_ms\": " << c.p99_ms << ", \"commits\": " << c.commits
        << "}" << (i + 1 < qps.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"scan_overhead\": [\n";
  for (size_t i = 0; i < overhead.size(); ++i) {
    const OverheadCell& c = overhead[i];
    out << "    {\"query\": \"" << c.query << "\", \"committed_ms\": "
        << c.committed_ms << ", \"rebuilt_ms\": " << c.rebuilt_ms
        << ", \"ratio\": " << c.ratio << ", \"rows\": " << c.rows_committed
        << "}" << (i + 1 < overhead.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  size_t lubm = LubmUniversities();
  std::vector<size_t> batch_sizes = {100, 1000, 10000};
  size_t commits = 8;
  size_t duration_ms = 2000;
  EngineKind engine = EngineKind::kWco;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--json") {
      const char* v = next();
      if (v) json_path = v;
    } else if (arg == "--lubm") {
      const char* v = next();
      if (v) lubm = static_cast<size_t>(std::atol(v));
    } else if (arg == "--batch-sizes") {
      const char* v = next();
      if (v) batch_sizes = SplitSizes(v);
    } else if (arg == "--commits") {
      const char* v = next();
      if (v) commits = static_cast<size_t>(std::atol(v));
    } else if (arg == "--duration-ms") {
      const char* v = next();
      if (v) duration_ms = static_cast<size_t>(std::atol(v));
    } else if (arg == "--engine") {
      const char* v = next();
      if (v && std::strcmp(v, "hashjoin") == 0) engine = EngineKind::kHashJoin;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }

  // ---- commit latency vs batch size --------------------------------
  std::vector<CommitCell> commit_cells;
  {
    size_t counter = 0;
    for (size_t n : batch_sizes) {
      auto db = MakeLubm(lubm, engine);
      UpdateBatch batch = MakeInsertBatch(n, &counter);
      Timer stage_timer;
      if (!db->Stage(batch).ok()) return 1;
      double stage_ms = stage_timer.ElapsedMillis();
      auto commit = db->Commit();
      if (!commit.ok()) {
        std::cerr << commit.status().ToString() << "\n";
        return 1;
      }
      CommitCell cell;
      cell.batch_size = n;
      cell.commit_ms = commit->commit_ms;
      cell.stage_ms = stage_ms;
      cell.store_size = commit->store_size;
      cell.version = commit->version;
      commit_cells.push_back(cell);
      std::cout << "commit batch=" << n << " stage=" << stage_ms
                << "ms commit=" << commit->commit_ms << "ms store="
                << commit->store_size << "\n";
    }
  }

  // ---- reader QPS with/without a live writer -----------------------
  std::vector<QpsCell> qps_cells;
  const auto& workload = LubmPaperQueries();
  for (bool with_writer : {false, true}) {
    auto db = MakeLubm(lubm, engine);
    QueryService::Options sopts;
    sopts.num_threads = 4;
    QueryService service(*db, sopts);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> committed{0};
    std::thread writer;
    if (with_writer) {
      writer = std::thread([&] {
        size_t counter = 1000000;  // distinct subject range from experiment 1
        while (!stop.load(std::memory_order_relaxed)) {
          UpdateBatch batch = MakeInsertBatch(500, &counter);
          UpdateRequest req;
          req.batch = std::move(batch);
          UpdateResponse resp = service.SubmitUpdate(std::move(req)).get();
          if (resp.status.ok()) ++committed;
        }
      });
    }

    Timer window;
    size_t submitted = 0;
    std::vector<std::future<QueryResponse>> inflight;
    while (window.ElapsedMillis() < static_cast<double>(duration_ms)) {
      for (const PaperQuery& q : workload) {
        QueryRequest req;
        req.text = q.sparql;
        ExecOptions opts = ExecOptions::Full();
        opts.max_intermediate_rows = kRowLimit;
        req.options = opts;
        inflight.push_back(service.Submit(std::move(req)));
        ++submitted;
      }
      for (auto& f : inflight) f.get();
      inflight.clear();
    }
    double wall_ms = window.ElapsedMillis();
    stop = true;
    if (writer.joinable()) writer.join();

    ServiceStatsSnapshot stats = service.Stats();
    QpsCell cell;
    cell.scenario = with_writer ? "with_writer" : "read_only";
    cell.reader_threads = 4;
    cell.queries = submitted;
    cell.qps = wall_ms > 0.0 ? 1000.0 * submitted / wall_ms : 0.0;
    cell.p50_ms = stats.p50_ms;
    cell.p99_ms = stats.p99_ms;
    cell.commits = committed.load();
    qps_cells.push_back(cell);
    std::cout << "qps scenario=" << cell.scenario << " queries=" << submitted
              << " qps=" << cell.qps << " commits=" << cell.commits << "\n";
  }

  // ---- post-commit scan overhead vs from-scratch rebuild -----------
  std::vector<OverheadCell> overhead_cells;
  {
    auto committed_db = MakeLubm(lubm, engine);
    size_t counter = 2000000;
    for (size_t k = 0; k < commits; ++k) {
      auto commit = committed_db->Apply(MakeInsertBatch(1000, &counter));
      if (!commit.ok()) return 1;
    }
    // Same net triples, loaded in one pass into a fresh store.
    auto snap = committed_db->Snapshot();
    Database rebuilt;
    for (TermId id = 0; id < snap->dict->size(); ++id)
      rebuilt.dict().Encode(snap->dict->Decode(id));
    for (const Triple& t : snap->store->triples())
      rebuilt.AddTriple(snap->dict->Decode(t.s), snap->dict->Decode(t.p),
                        snap->dict->Decode(t.o));
    rebuilt.Finalize(engine);

    for (const PaperQuery& q : workload) {
      OverheadCell cell;
      cell.query = q.id;
      constexpr int kReps = 3;
      double best_committed = 1e300, best_rebuilt = 1e300;
      int ok_reps = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        RunResult a = RunQuery(*committed_db, q.sparql, ExecOptions::Full());
        RunResult b = RunQuery(rebuilt, q.sparql, ExecOptions::Full());
        if (!a.ok || !b.ok) continue;
        ++ok_reps;
        best_committed = std::min(best_committed, a.total_ms);
        best_rebuilt = std::min(best_rebuilt, b.total_ms);
        cell.rows_committed = a.rows;
        cell.rows_rebuilt = b.rows;
      }
      // A query that never completes must fail the run, not slip past the
      // row cross-check with both counters at 0 and sentinel latencies.
      if (ok_reps == 0) {
        std::cerr << "no successful rep for " << q.id << "\n";
        return 1;
      }
      if (cell.rows_committed != cell.rows_rebuilt) {
        std::cerr << "row mismatch on " << q.id << "\n";
        return 1;
      }
      cell.committed_ms = best_committed;
      cell.rebuilt_ms = best_rebuilt;
      cell.ratio = best_rebuilt > 0.0 ? best_committed / best_rebuilt : 1.0;
      overhead_cells.push_back(cell);
      std::cout << "overhead " << q.id << " committed=" << cell.committed_ms
                << "ms rebuilt=" << cell.rebuilt_ms << "ms ratio="
                << cell.ratio << "\n";
    }
  }

  if (!json_path.empty())
    WriteJson(commit_cells, qps_cells, overhead_cells, lubm, json_path);
  return 0;
}
