// Durability benchmark: commit latency under each WAL fsync policy, plus
// recovery cost and a correctness gate.
//
// Two experiments over a LUBM base store:
//
//   commit    — per-policy commit latency: apply K insert batches through
//               a WAL configured fsync=off | interval | always and report
//               mean/p50/p99 commit latency and log bytes. The spread is
//               the price of the durability guarantee — `always` pays one
//               (group-committed) fsync per commit, `interval` a bounded
//               loss window, `off` only the page-cache write.
//   recovery  — reopen each WAL directory into a fresh database and time
//               snapshot-free replay; verifies the recovered version and
//               store size match what was committed.
//
// Usage:
//   bench_wal [--json FILE] [--lubm N] [--batches K] [--batch-size N]
//             [--interval-ms D] [--engine wco|hashjoin] [--check-recovery]
//
// --check-recovery is the CI smoke gate: exit 1 unless every policy's
// replay reproduces the committed version and triple count exactly.
// BENCH_wal.json in the repo root records the last accepted numbers
// (schema in docs/benchmarks.md).
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "store/wal.h"
#include "util/timer.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

UpdateBatch MakeInsertBatch(size_t n, size_t* counter) {
  UpdateBatch batch;
  Term pred = Term::Iri("http://bench.sparqluo/wal/links");
  for (size_t i = 0; i < n; ++i) {
    size_t id = (*counter)++;
    batch.Insert(Term::Iri("http://bench.sparqluo/wal/s" + std::to_string(id)),
                 pred,
                 Term::Iri("http://bench.sparqluo/wal/s" +
                           std::to_string(id / 7)));
  }
  return batch;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

uint64_t DirBytes(const std::string& dir) {
  FileOps* ops = FileOps::Default();
  auto names = ops->ListDir(dir);
  if (!names.ok()) return 0;
  uint64_t total = 0;
  for (const std::string& n : *names) {
    std::ifstream in(dir + "/" + n, std::ios::binary | std::ios::ate);
    if (in.is_open()) total += static_cast<uint64_t>(in.tellg());
  }
  return total;
}

struct PolicyCell {
  std::string policy;
  size_t batches = 0;
  size_t batch_size = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double commits_per_sec = 0.0;
  uint64_t wal_bytes = 0;
  uint64_t version = 0;
  size_t store_size = 0;
};

struct RecoveryCell {
  std::string policy;
  uint64_t records = 0;
  double recover_ms = 0.0;
  uint64_t version = 0;
  size_t store_size = 0;
  bool exact = false;  ///< Replay reproduced version and triple count.
};

void WriteJson(const std::vector<PolicyCell>& commits,
               const std::vector<RecoveryCell>& recoveries, size_t lubm,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"wal\",\n  \"hardware_threads\": "
      << std::thread::hardware_concurrency() << ",\n  \"lubm_universities\": "
      << lubm << ",\n  \"commit_latency\": [\n";
  for (size_t i = 0; i < commits.size(); ++i) {
    const PolicyCell& c = commits[i];
    out << "    {\"policy\": \"" << c.policy << "\", \"batches\": "
        << c.batches << ", \"batch_size\": " << c.batch_size
        << ", \"mean_ms\": " << c.mean_ms << ", \"p50_ms\": " << c.p50_ms
        << ", \"p99_ms\": " << c.p99_ms << ", \"commits_per_sec\": "
        << c.commits_per_sec << ", \"wal_bytes\": " << c.wal_bytes
        << ", \"version\": " << c.version << ", \"store_size\": "
        << c.store_size << "}" << (i + 1 < commits.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"recovery\": [\n";
  for (size_t i = 0; i < recoveries.size(); ++i) {
    const RecoveryCell& c = recoveries[i];
    out << "    {\"policy\": \"" << c.policy << "\", \"records\": "
        << c.records << ", \"recover_ms\": " << c.recover_ms
        << ", \"version\": " << c.version << ", \"store_size\": "
        << c.store_size << ", \"exact\": " << (c.exact ? "true" : "false")
        << "}" << (i + 1 < recoveries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  size_t lubm = LubmUniversities();
  size_t batches = 64;
  size_t batch_size = 500;
  int interval_ms = 10;
  EngineKind engine = EngineKind::kWco;
  bool check_recovery = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--json") {
      const char* v = next();
      if (v) json_path = v;
    } else if (arg == "--lubm") {
      const char* v = next();
      if (v) lubm = static_cast<size_t>(std::atol(v));
    } else if (arg == "--batches") {
      const char* v = next();
      if (v) batches = static_cast<size_t>(std::atol(v));
    } else if (arg == "--batch-size") {
      const char* v = next();
      if (v) batch_size = static_cast<size_t>(std::atol(v));
    } else if (arg == "--interval-ms") {
      const char* v = next();
      if (v) interval_ms = std::atoi(v);
    } else if (arg == "--engine") {
      const char* v = next();
      if (v && std::strcmp(v, "hashjoin") == 0) engine = EngineKind::kHashJoin;
    } else if (arg == "--check-recovery") {
      check_recovery = true;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }

  struct PolicySpec {
    const char* name;
    FsyncPolicy policy;
  };
  const PolicySpec specs[] = {{"off", FsyncPolicy::kOff},
                              {"interval", FsyncPolicy::kInterval},
                              {"always", FsyncPolicy::kAlways}};

  std::vector<PolicyCell> cells;
  std::vector<RecoveryCell> recoveries;
  for (const PolicySpec& spec : specs) {
    std::string dir = std::string("bench_wal.") + spec.name + ".d";
    std::string cleanup = "rm -rf " + dir;
    if (std::system(cleanup.c_str()) != 0) return 1;

    uint64_t committed_version = 0;
    size_t committed_size = 0;
    {
      auto db = MakeLubm(lubm, engine);
      Wal::Options wopts;
      wopts.fsync = spec.policy;
      wopts.interval_ms = interval_ms;
      auto opened = db->OpenWal(dir, wopts);
      if (!opened.ok()) {
        std::cerr << "wal open failed: " << opened.status().ToString() << "\n";
        return 1;
      }
      size_t counter = 0;
      std::vector<double> latencies;
      latencies.reserve(batches);
      Timer wall;
      for (size_t k = 0; k < batches; ++k) {
        UpdateBatch batch = MakeInsertBatch(batch_size, &counter);
        Timer t;
        auto commit = db->Apply(batch);
        if (!commit.ok()) {
          std::cerr << "commit failed: " << commit.status().ToString() << "\n";
          return 1;
        }
        latencies.push_back(t.ElapsedMillis());
        committed_version = commit->version;
        committed_size = commit->store_size;
      }
      double wall_ms = wall.ElapsedMillis();
      if (Status s = db->wal()->Close(); !s.ok()) {
        std::cerr << "wal close failed: " << s.ToString() << "\n";
        return 1;
      }

      PolicyCell cell;
      cell.policy = spec.name;
      cell.batches = batches;
      cell.batch_size = batch_size;
      double sum = 0.0;
      for (double v : latencies) sum += v;
      cell.mean_ms = latencies.empty() ? 0.0 : sum / latencies.size();
      cell.p50_ms = Percentile(latencies, 0.50);
      cell.p99_ms = Percentile(latencies, 0.99);
      cell.commits_per_sec = wall_ms > 0.0 ? 1000.0 * batches / wall_ms : 0.0;
      cell.wal_bytes = DirBytes(dir);
      cell.version = committed_version;
      cell.store_size = committed_size;
      cells.push_back(cell);
      std::cout << "commit policy=" << cell.policy << " mean="
                << cell.mean_ms << "ms p50=" << cell.p50_ms << "ms p99="
                << cell.p99_ms << "ms commits/s=" << cell.commits_per_sec
                << " wal_bytes=" << cell.wal_bytes << "\n";
    }

    // Recovery: fresh base, replay the whole log, verify exactness.
    {
      auto db = MakeLubm(lubm, engine);
      Timer t;
      auto recovered = db->OpenWal(dir, {});
      double recover_ms = t.ElapsedMillis();
      RecoveryCell cell;
      cell.policy = spec.name;
      cell.recover_ms = recover_ms;
      if (recovered.ok()) {
        cell.records = recovered->records_replayed;
        cell.version = db->version();
        cell.store_size = db->size();
        cell.exact = cell.version == committed_version &&
                     cell.store_size == committed_size;
      }
      recoveries.push_back(cell);
      std::cout << "recovery policy=" << cell.policy << " records="
                << cell.records << " recover=" << cell.recover_ms
                << "ms version=" << cell.version << " exact="
                << (cell.exact ? "yes" : "no") << "\n";
      if (check_recovery && !cell.exact) {
        std::cerr << "recovery gate failed for policy " << spec.name
                  << ": replay did not reproduce the committed state\n";
        return 1;
      }
    }
    if (std::system(cleanup.c_str()) != 0) return 1;
  }

  if (!json_path.empty()) WriteJson(cells, recoveries, lubm, json_path);
  return 0;
}
