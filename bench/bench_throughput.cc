// Aggregate-QPS scaling benchmark for the concurrent query service.
//
// Serves the paper's 12-query workload through a QueryService at several
// worker-thread counts and reports aggregate QPS, p50/p99 latency and plan
// cache hit rate per (dataset, engine, mode, threads) cell. The plan cache
// is warmed with one pass per distinct query before timing, so steady-state
// serving (parse + transform amortized away) is what is measured.
//
// Usage:
//   bench_throughput [--json FILE] [--threads 1,2,4,8] [--repeat N]
//                    [--datasets lubm,dbpedia] [--engines wco,hashjoin]
//                    [--modes base,tt,cp,full] [--lubm N] [--dbpedia N]
//                    [--obs-overhead] [--overhead-trials N]
//                    [--check-overhead PCT]
//
// Defaults keep the run small: LUBM + DBpedia, both engines, full mode,
// 1/2/4/8 threads. Add --modes base,tt,cp,full for the full matrix.
//
// --obs-overhead measures the cost of the observability layer on the LUBM
// workload: the same timed batch is served with (a) metrics recording off
// (QueryService::Options::enable_metrics = false — the no-observability
// baseline), (b) the default config (metrics on, tracing off), and (c)
// every query traced. Configs are interleaved and the best (minimum) wall
// time of N trials is kept, which filters scheduler noise on small CI
// machines. --check-overhead PCT exits nonzero when config (b) is more
// than PCT percent slower than (a) — the CI gate proving the
// tracing-disabled hot path stays free.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/query_service.h"
#include "util/timer.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

struct Cell {
  std::string dataset;
  std::string engine;
  std::string mode;
  size_t threads = 0;
  size_t queries = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t aborted = 0;
  uint64_t failed = 0;
};

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

ExecOptions ModeOptions(const std::string& mode) {
  if (mode == "base") return ExecOptions::Base();
  if (mode == "tt") return ExecOptions::TT();
  if (mode == "cp") return ExecOptions::CP();
  return ExecOptions::Full();
}

Cell RunCell(Database& db, const std::vector<PaperQuery>& workload,
             const std::string& dataset, const std::string& engine,
             const std::string& mode, size_t threads, size_t repeat) {
  ExecOptions exec = ModeOptions(mode);
  exec.max_intermediate_rows = kRowLimit;

  QueryService::Options sopts;
  sopts.num_threads = threads;
  sopts.max_queue = workload.size() * repeat + 16;
  // Guard rail so pathological cells (base mode on hostile queries) cannot
  // stall the whole benchmark.
  sopts.default_deadline = std::chrono::milliseconds(10000);
  QueryService service(db, sopts);

  // Warm the plan cache: one pass over the distinct queries.
  {
    std::vector<QueryRequest> warm;
    for (const PaperQuery& q : workload)
      warm.push_back(QueryRequest{q.sparql, exec, {}, nullptr});
    service.RunBatch(std::move(warm));
  }

  std::vector<QueryRequest> batch;
  batch.reserve(workload.size() * repeat);
  for (size_t rep = 0; rep < repeat; ++rep)
    for (const PaperQuery& q : workload)
      batch.push_back(QueryRequest{q.sparql, exec, {}, nullptr});

  Timer timer;
  std::vector<QueryResponse> responses = service.RunBatch(std::move(batch));
  double wall_ms = timer.ElapsedMillis();

  Cell cell;
  cell.dataset = dataset;
  cell.engine = engine;
  cell.mode = mode;
  cell.threads = threads;
  cell.queries = responses.size();
  cell.wall_ms = wall_ms;
  cell.qps = wall_ms > 0.0
                 ? 1000.0 * static_cast<double>(responses.size()) / wall_ms
                 : 0.0;
  // Latency/hit-rate over the timed batch only (the warm pass would skew
  // both; service.Stats() still aggregates everything for monitoring).
  std::vector<double> latencies;
  size_t hits = 0;
  for (const QueryResponse& r : responses) {
    latencies.push_back(r.total_ms);
    if (r.plan_cache_hit) ++hits;
    if (r.status.ok()) continue;
    if (r.metrics.aborted) {
      ++cell.aborted;
    } else {
      ++cell.failed;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double p) {
    return latencies.empty()
               ? 0.0
               : latencies[static_cast<size_t>(
                     p * static_cast<double>(latencies.size() - 1))];
  };
  cell.p50_ms = pct(0.50);
  cell.p99_ms = pct(0.99);
  cell.cache_hit_rate = responses.empty()
                            ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(responses.size());
  return cell;
}

/// Observability-overhead measurement (see file header). All three configs
/// share one dataset and workload; wall times are best-of-N over interleaved
/// trials.
struct ObsOverhead {
  size_t queries = 0;
  size_t trials = 0;
  double off_ms = 0.0;     ///< enable_metrics = false (baseline).
  double on_ms = 0.0;      ///< default config: metrics on, tracing off.
  double traced_ms = 0.0;  ///< trace_queries = true (every query traced).
  double metrics_overhead_pct = 0.0;
  double traced_overhead_pct = 0.0;
};

ObsOverhead RunObsOverhead(Database& db, const std::vector<PaperQuery>& workload,
                           size_t repeat, size_t trials) {
  ExecOptions exec = ExecOptions::Full();
  exec.max_intermediate_rows = kRowLimit;

  // One timed batch through a fresh service with the given observability
  // config. The plan cache is warmed first so parse/transform cost (identical
  // across configs, and skipped on the steady-state serving path) does not
  // dilute the measured overhead.
  auto run_once = [&](bool metrics, bool traced) -> double {
    QueryService::Options sopts;
    sopts.num_threads = 2;
    sopts.max_queue = workload.size() * repeat + 16;
    sopts.default_deadline = std::chrono::milliseconds(10000);
    sopts.enable_metrics = metrics;
    sopts.trace_queries = traced;
    QueryService service(db, sopts);
    {
      std::vector<QueryRequest> warm;
      for (const PaperQuery& q : workload)
        warm.push_back(QueryRequest{q.sparql, exec, {}, nullptr});
      service.RunBatch(std::move(warm));
    }
    std::vector<QueryRequest> batch;
    batch.reserve(workload.size() * repeat);
    for (size_t rep = 0; rep < repeat; ++rep)
      for (const PaperQuery& q : workload)
        batch.push_back(QueryRequest{q.sparql, exec, {}, nullptr});
    Timer timer;
    service.RunBatch(std::move(batch));
    return timer.ElapsedMillis();
  };

  ObsOverhead result;
  result.queries = workload.size() * repeat;
  result.trials = trials;
  result.off_ms = result.on_ms = result.traced_ms = 1e300;
  for (size_t t = 0; t < trials; ++t) {
    result.off_ms = std::min(result.off_ms, run_once(false, false));
    result.on_ms = std::min(result.on_ms, run_once(true, false));
    result.traced_ms = std::min(result.traced_ms, run_once(true, true));
  }
  if (result.off_ms > 0.0) {
    result.metrics_overhead_pct =
        100.0 * (result.on_ms - result.off_ms) / result.off_ms;
    result.traced_overhead_pct =
        100.0 * (result.traced_ms - result.off_ms) / result.off_ms;
  }
  return result;
}

void WriteJson(const std::vector<Cell>& cells, const ObsOverhead* obs,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"throughput\",\n  \"hardware_threads\": "
      << std::thread::hardware_concurrency() << ",\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"dataset\": \"" << c.dataset << "\", \"engine\": \""
        << c.engine << "\", \"mode\": \"" << c.mode << "\", \"threads\": "
        << c.threads << ", \"queries\": " << c.queries << ", \"wall_ms\": "
        << c.wall_ms << ", \"qps\": " << c.qps << ", \"p50_ms\": " << c.p50_ms
        << ", \"p99_ms\": " << c.p99_ms << ", \"cache_hit_rate\": "
        << c.cache_hit_rate << ", \"aborted\": " << c.aborted
        << ", \"failed\": " << c.failed << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]";
  if (obs != nullptr) {
    out << ",\n  \"obs_overhead\": {\"queries\": " << obs->queries
        << ", \"trials\": " << obs->trials << ", \"metrics_off_ms\": "
        << obs->off_ms << ", \"metrics_on_ms\": " << obs->on_ms
        << ", \"traced_ms\": " << obs->traced_ms
        << ", \"metrics_overhead_pct\": " << obs->metrics_overhead_pct
        << ", \"traced_overhead_pct\": " << obs->traced_overhead_pct << "}";
  }
  out << "\n}\n";
  std::cerr << "# wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::vector<std::string> datasets = {"lubm", "dbpedia"};
  std::vector<std::string> engines = {"wco", "hashjoin"};
  std::vector<std::string> modes = {"full"};
  size_t repeat = 4;
  size_t lubm_universities = 3;
  size_t dbpedia_articles = 10000;
  bool obs_overhead = false;
  size_t overhead_trials = 5;
  double check_overhead_pct = -1.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--json" && (v = next())) {
      json_path = v;
    } else if (arg == "--threads" && (v = next())) {
      thread_counts.clear();
      for (const std::string& t : SplitList(v))
        thread_counts.push_back(static_cast<size_t>(std::atol(t.c_str())));
    } else if (arg == "--datasets" && (v = next())) {
      datasets = SplitList(v);
    } else if (arg == "--engines" && (v = next())) {
      engines = SplitList(v);
    } else if (arg == "--modes" && (v = next())) {
      modes = SplitList(v);
    } else if (arg == "--repeat" && (v = next())) {
      repeat = static_cast<size_t>(std::atol(v));
    } else if (arg == "--lubm" && (v = next())) {
      lubm_universities = static_cast<size_t>(std::atol(v));
    } else if (arg == "--dbpedia" && (v = next())) {
      dbpedia_articles = static_cast<size_t>(std::atol(v));
    } else if (arg == "--obs-overhead") {
      obs_overhead = true;
    } else if (arg == "--overhead-trials" && (v = next())) {
      overhead_trials = static_cast<size_t>(std::atol(v));
    } else if (arg == "--check-overhead" && (v = next())) {
      obs_overhead = true;
      check_overhead_pct = std::atof(v);
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }

  std::vector<Cell> cells;
  std::printf("%-8s %-9s %-5s %8s %9s %9s %9s %9s %6s\n", "dataset", "engine",
              "mode", "threads", "qps", "p50_ms", "p99_ms", "hit_rate",
              "abort");
  for (const std::string& dataset : datasets) {
    const auto& workload =
        dataset == "lubm" ? LubmPaperQueries() : DbpediaPaperQueries();
    for (const std::string& engine : engines) {
      EngineKind kind =
          engine == "wco" ? EngineKind::kWco : EngineKind::kHashJoin;
      auto db = dataset == "lubm" ? MakeLubm(lubm_universities, kind)
                                  : MakeDbpedia(dbpedia_articles, kind);
      for (const std::string& mode : modes) {
        for (size_t threads : thread_counts) {
          Cell cell = RunCell(*db, workload, dataset, engine, mode, threads,
                              repeat);
          std::printf("%-8s %-9s %-5s %8zu %9.1f %9.2f %9.2f %9.2f %6llu\n",
                      cell.dataset.c_str(), cell.engine.c_str(),
                      cell.mode.c_str(), cell.threads, cell.qps, cell.p50_ms,
                      cell.p99_ms, cell.cache_hit_rate,
                      static_cast<unsigned long long>(cell.aborted));
          std::fflush(stdout);
          cells.push_back(cell);
        }
      }
    }
  }
  ObsOverhead obs;
  if (obs_overhead) {
    auto db = MakeLubm(lubm_universities, EngineKind::kWco);
    obs = RunObsOverhead(*db, LubmPaperQueries(), repeat, overhead_trials);
    std::printf(
        "obs_overhead: off %.2f ms, on %.2f ms (%+.2f%%), traced %.2f ms "
        "(%+.2f%%), best of %zu trials\n",
        obs.off_ms, obs.on_ms, obs.metrics_overhead_pct, obs.traced_ms,
        obs.traced_overhead_pct, obs.trials);
  }
  if (!json_path.empty())
    WriteJson(cells, obs_overhead ? &obs : nullptr, json_path);
  if (check_overhead_pct >= 0.0 &&
      obs.metrics_overhead_pct > check_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: metrics-on overhead %.2f%% exceeds gate %.2f%%\n",
                 obs.metrics_overhead_pct, check_overhead_pct);
    return 1;
  }
  return 0;
}
