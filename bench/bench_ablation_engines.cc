// Ablation: host engine comparison. The paper implements its optimizer on
// two systems (gStore and Jena); this harness contrasts our re-implemented
// hosts — the WCO vertex-extension engine vs the binary hash-join engine —
// on characteristic BGP shapes and on the full paper workload, all under
// the `full` optimization level.
//
// Expected shape: WCO wins on selective path/triangle shapes (it never
// materializes a full pattern), hash join wins on unselective star scans
// (bulk scans + single hash build beat per-binding adjacency lookups); the
// SPARQL-UO optimizations help on both hosts.
#include "util/timer.h"
#include "bench_common.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

double MedianMs(Database& db, const std::string& query, int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    RunResult r = RunQuery(db, query, ExecOptions::Full());
    if (!r.ok) return -1.0;
    best = std::min(best, r.total_ms);
  }
  return best;
}

}  // namespace

int main() {
  using namespace sparqluo;
  using namespace sparqluo::bench;

  size_t universities = LubmUniversities();
  auto wco = MakeLubm(universities, EngineKind::kWco);
  auto hash = MakeLubm(universities, EngineKind::kHashJoin);
  std::printf("Host-engine ablation (LUBM, %zu triples), full mode\n\n",
              wco->size());

  struct Shape {
    const char* name;
    const char* query;
  };
  const char* prefix =
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";
  Shape shapes[] = {
      {"selective-path",
       "SELECT * WHERE { <http://www.Department0.University0.edu/"
       "UndergraduateStudent91> ub:takesCourse ?c . ?t ub:teacherOf ?c . "
       "?t ub:worksFor ?d . }"},
      {"unselective-star",
       "SELECT * WHERE { ?x ub:emailAddress ?e . ?x ub:telephone ?t . "
       "?x ub:name ?n . }"},
      {"triangle",
       "SELECT * WHERE { ?s ub:advisor ?p . ?p ub:teacherOf ?c . "
       "?s ub:takesCourse ?c . }"},
      {"degree-join",
       "SELECT * WHERE { ?a ub:undergraduateDegreeFrom ?u . "
       "?b ub:doctoralDegreeFrom ?u . ?a ub:worksFor "
       "<http://www.Department0.University0.edu> . }"},
  };

  std::printf("%-18s %14s %16s\n", "shape", "gStore-WCO(ms)",
              "Jena-HashJoin(ms)");
  for (const Shape& s : shapes) {
    std::string q = std::string(prefix) + s.query;
    std::printf("%-18s %14.1f %16.1f\n", s.name, MedianMs(*wco, q),
                MedianMs(*hash, q));
    std::fflush(stdout);
  }

  std::printf("\n%-10s %14s %16s\n", "query", "gStore-WCO(ms)",
              "Jena-HashJoin(ms)");
  for (const PaperQuery& pq : LubmPaperQueries()) {
    if (pq.id.rfind("q1.", 0) != 0) continue;
    std::printf("%-10s %14.1f %16.1f\n", pq.id.c_str(),
                MedianMs(*wco, pq.sparql, 1), MedianMs(*hash, pq.sparql, 1));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: WCO ahead on selective path/triangle shapes; hash "
      "join ahead on\nunselective star scans; both hosts benefit from the "
      "SPARQL-UO optimizations.\n");
  return 0;
}
