// Ablation (Figure 3 motivation): naive binary-tree-expression evaluation
// vs BGP-based evaluation (Algorithm 1) vs the full optimized pipeline, as
// google-benchmark microbenchmarks on the motivating query shape — a
// selective anchor joined with a pervasive attribute pattern.
#include <benchmark/benchmark.h>

#include "baseline/binary_tree_eval.h"
#include "bench_common.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

Database* TheDb() {
  static std::unique_ptr<Database> db = [] {
    // Small scale: the naive evaluator materializes every triple pattern.
    auto d = MakeLubm(1, EngineKind::kWco);
    return d;
  }();
  return db.get();
}

// Figure 3's shape: highly selective student pattern + low-selectivity
// attribute pattern, coalescable into one BGP.
const char* kMotivatingQuery = R"(
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE {
  <http://www.Department0.University0.edu/UndergraduateStudent91> ub:takesCourse ?c .
  ?x ub:takesCourse ?c .
  ?x ub:emailAddress ?email .
})";

void BM_BinaryTreeEvaluation(benchmark::State& state) {
  Database* db = TheDb();
  auto q = db->Parse(kMotivatingQuery);
  BinaryTreeEvaluator eval(db->store(), db->dict());
  for (auto _ : state) {
    auto r = eval.Execute(*q);
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_BinaryTreeEvaluation)->Unit(benchmark::kMillisecond);

void BM_BgpBasedEvaluation(benchmark::State& state) {
  Database* db = TheDb();
  for (auto _ : state) {
    auto r = db->Query(kMotivatingQuery, ExecOptions::Base());
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_BgpBasedEvaluation)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  Database* db = TheDb();
  for (auto _ : state) {
    auto r = db->Query(kMotivatingQuery, ExecOptions::Full());
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

// The same contrast on a UNION + OPTIONAL query (Figure 2's shape).
const char* kUoQuery = R"(
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE {
  <http://www.Department0.University0.edu/UndergraduateStudent91> ub:memberOf ?d .
  { ?x ub:worksFor ?d . } UNION { ?x ub:headOf ?d . }
  OPTIONAL { ?p ub:publicationAuthor ?x . }
})";

void BM_BinaryTreeEvaluationUO(benchmark::State& state) {
  Database* db = TheDb();
  auto q = db->Parse(kUoQuery);
  BinaryTreeEvaluator eval(db->store(), db->dict());
  for (auto _ : state) {
    auto r = eval.Execute(*q);
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_BinaryTreeEvaluationUO)->Unit(benchmark::kMillisecond);

void BM_FullPipelineUO(benchmark::State& state) {
  Database* db = TheDb();
  for (auto _ : state) {
    auto r = db->Query(kUoQuery, ExecOptions::Full());
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_FullPipelineUO)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
