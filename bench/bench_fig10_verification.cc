// Figure 10: verification of optimizations. Execution time of base / TT /
// CP / full (plus TT-and-full transformation time) on q1.1-q1.6, in all
// four grids {gStore-WCO, Jena-HashJoin} x {LUBM, DBpedia}.
//
// Expected shape (paper §7.1): TT, CP and full beat base on every query;
// full is best (or ties) nearly everywhere, by 2x up to orders of
// magnitude; base hits the memory guard ("OOM") on several queries.
#include "bench_common.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

void Grid(const char* engine_name, Database& db,
          const std::vector<PaperQuery>& queries, const char* dataset) {
  std::printf("--- %s, %s ---\n", engine_name, dataset);
  std::printf("%-7s %12s %12s %12s %12s %14s\n", "query", "base(ms)",
              "TT(ms)", "CP(ms)", "full(ms)", "transform(ms)");
  for (const PaperQuery& pq : queries) {
    if (pq.id.rfind("q1.", 0) != 0) continue;
    RunResult base = RunQuery(db, pq.sparql, ExecOptions::Base());
    RunResult tt = RunQuery(db, pq.sparql, ExecOptions::TT());
    RunResult cp = RunQuery(db, pq.sparql, ExecOptions::CP());
    RunResult full = RunQuery(db, pq.sparql, ExecOptions::Full());
    std::printf("%-7s %12s %12s %12s %12s %14.2f\n", pq.id.c_str(),
                TimeCell(base).c_str(), TimeCell(tt).c_str(),
                TimeCell(cp).c_str(), TimeCell(full).c_str(),
                full.transform_ms);
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sparqluo;
  using namespace sparqluo::bench;

  std::printf("Figure 10: Verification of optimizations\n");
  std::printf("(row guard = %zu intermediate rows, shown as OOM)\n\n",
              kRowLimit);

  for (EngineKind kind : {EngineKind::kWco, EngineKind::kHashJoin}) {
    {
      auto db = MakeLubm(LubmUniversities(), kind);
      Grid(EngineKindName(kind), *db, LubmPaperQueries(), "LUBM");
    }
    {
      auto db = MakeDbpedia(DbpediaArticles(), kind);
      Grid(EngineKindName(kind), *db, DbpediaPaperQueries(), "DBpedia");
    }
  }
  std::printf(
      "Expected shape: base slowest everywhere (often OOM); TT and CP each "
      "win on\ndifferent queries; full best or tied on virtually all; "
      "transformation time is\nnegligible next to execution time.\n");
  return 0;
}
