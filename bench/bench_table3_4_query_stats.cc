// Tables 3 and 4: per-query statistics — Type, Count_BGP, Depth and result
// size |[[Q]]_D| — for the 12 LUBM and 12 DBpedia benchmark queries.
#include "betree/builder.h"
#include "bench_common.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

void Report(const char* title, Database& db,
            const std::vector<PaperQuery>& queries) {
  std::printf("%s\n", title);
  std::printf("%-8s %-5s %10s %7s %14s\n", "Query", "Type", "Count_BGP",
              "Depth", "|[[Q]]_D|");
  for (const PaperQuery& pq : queries) {
    auto q = db.Parse(pq.sparql);
    if (!q.ok()) {
      std::printf("%-8s parse error: %s\n", pq.id.c_str(),
                  q.status().ToString().c_str());
      continue;
    }
    BeTree tree = BuildBeTree(*q);
    RunResult r = RunQuery(db, pq.sparql, ExecOptions::Full());
    std::printf("%-8s %-5s %10zu %7zu %14s\n", pq.id.c_str(), pq.type.c_str(),
                tree.CountBgp(), tree.Depth(),
                r.ok ? std::to_string(r.rows).c_str() : "OOM");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sparqluo::bench;
  {
    auto db = MakeLubm(LubmUniversities(), sparqluo::EngineKind::kWco);
    std::printf("(LUBM scale: %zu universities, %zu triples)\n\n",
                LubmUniversities(), db->size());
    Report("Table 3: Query Statistics on LUBM", *db,
           sparqluo::LubmPaperQueries());
  }
  {
    auto db = MakeDbpedia(DbpediaArticles(), sparqluo::EngineKind::kWco);
    std::printf("(DBpedia scale: %zu articles, %zu triples)\n\n",
                DbpediaArticles(), db->size());
    Report("Table 4: Query Statistics on DBpedia", *db,
           sparqluo::DbpediaPaperQueries());
  }
  std::printf(
      "Expected shape: Group 1 mixes U/O/UO types with Count_BGP 2-10 and "
      "Depth 2-5;\nresult sizes span orders of magnitude across queries.\n");
  return 0;
}
