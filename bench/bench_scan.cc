// Index microbenchmark: probe latency per triple-pattern shape, scan
// throughput, and resident index bytes per triple.
//
// This is the before/after harness for the CSR permutation-index layout
// (docs/index_layout.md). It compiles against either store layout: the
// flat-array baseline (three sorted std::vector<Triple> copies) and the
// two-level CSR layout are probed through the same public Match/Scan/
// Count surface, with `requires`-clauses picking up the CSR-only
// accessors (IndexBytes, ProbeHint) when present. BENCH_scan.json keeps
// one run per layout recorded on the same machine.
//
// Probe keys are sampled from resident triples and issued in ascending
// (s, p, o) order. For the shapes whose probing index is keyed on s
// (s??, sp?, spo) that is a sorted level-1 probe sequence — the access
// pattern of WCO extension candidates — exercising the galloping fast
// path; the p- and o-keyed shapes see effectively random hint distances,
// so their numbers characterize the adaptive search's graceful
// degradation toward plain binary-search cost. The order is identical
// across layouts, keeping the recorded runs comparable.
//
// Usage:
//   bench_scan [--json FILE] [--lubm N] [--repeat N] [--probes N]
//              [--check-bytes]
//
// --check-bytes exits non-zero when resident index bytes/triple is not
// below the flat-array baseline (3 * sizeof(Triple)); CI runs it as the
// memory-regression gate.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/timer.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

/// Resident bytes of the permutation indexes. The flat layout keeps three
/// full 12-byte copies of the triple set; the CSR layout reports its own
/// footprint (level-1 directories + level-2 pair arrays). Templated so the
/// `requires`-probe for the CSR-only accessor stays dependent and the file
/// compiles against either layout.
template <typename Store>
size_t IndexBytesOf(const Store& store) {
  if constexpr (requires { store.IndexBytes(); }) {
    return store.IndexBytes();
  } else {
    return 3 * sizeof(Triple) * store.size();
  }
}

template <typename Store>
constexpr bool HasCsrLayout() {
  return requires(const Store& s) { s.IndexBytes(); };
}

/// Runs the probe list once, threading a probe hint through when the
/// layout has one (the CSR adaptive fast path for sorted probe sequences).
template <typename Store>
uint64_t RunProbes(const Store& store,
                   const std::vector<TriplePatternIds>& queries) {
  uint64_t matches = 0;
  if constexpr (requires(Store s) {
                  typename Store::ProbeHint;
                  s.Count(TriplePatternIds{},
                          static_cast<typename Store::ProbeHint*>(nullptr));
                }) {
    typename Store::ProbeHint hint;
    for (const TriplePatternIds& q : queries) matches += store.Count(q, &hint);
  } else {
    for (const TriplePatternIds& q : queries) matches += store.Count(q);
  }
  return matches;
}

constexpr double kFlatBytesPerTriple = 3.0 * sizeof(Triple);

/// One pattern shape: which positions of the sampled triple stay bound.
struct Shape {
  const char* name;
  bool s, p, o;
};

constexpr Shape kShapes[] = {
    {"s??", true, false, false}, {"?p?", false, true, false},
    {"??o", false, false, true}, {"sp?", true, true, false},
    {"s?o", true, false, true},  {"?po", false, true, true},
    {"spo", true, true, true},   {"???", false, false, false},
};

struct ProbeResult {
  std::string shape;
  size_t probes = 0;
  double ns_per_probe = 0.0;
  uint64_t matches = 0;  ///< Checksum: total matched triples over all probes.
};

struct ScanResult {
  std::string scan;
  double ms = 0.0;
  uint64_t triples = 0;
  uint64_t checksum = 0;  ///< Forces the scan loop to touch every triple.
  double triples_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  size_t lubm_universities = LubmUniversities();
  size_t repeat = 5;
  size_t num_probes = 20000;
  bool check_bytes = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--json" && (v = next())) {
      json_path = v;
    } else if (arg == "--lubm" && (v = next())) {
      lubm_universities = static_cast<size_t>(std::atol(v));
    } else if (arg == "--repeat" && (v = next())) {
      repeat = std::max<size_t>(1, static_cast<size_t>(std::atol(v)));
    } else if (arg == "--probes" && (v = next())) {
      num_probes = std::max<size_t>(1, static_cast<size_t>(std::atol(v)));
    } else if (arg == "--check-bytes") {
      check_bytes = true;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }

  auto db = MakeLubm(lubm_universities, EngineKind::kWco);
  const TripleStore& store = db->store();
  const size_t n = store.size();
  const double bytes_per_triple =
      n == 0 ? 0.0 : static_cast<double>(IndexBytesOf(store)) / n;
  const bool is_csr = HasCsrLayout<TripleStore>();

  std::printf("# layout %s, %zu triples, %.2f index bytes/triple (flat "
              "baseline %.1f)\n",
              is_csr ? "csr" : "flat", n, bytes_per_triple,
              kFlatBytesPerTriple);

  if (check_bytes && bytes_per_triple >= kFlatBytesPerTriple) {
    std::fprintf(stderr,
                 "# FAIL: %.2f index bytes/triple is not below the flat-array "
                 "baseline of %.1f\n",
                 bytes_per_triple, kFlatBytesPerTriple);
    return 1;
  }

  // Sample resident triples at a fixed stride so every probe hits, then
  // sort each shape's probe keys ascending by (s, p, o) — sorted level-1
  // sequences for the s-keyed shapes, random-distance ones for the rest
  // (see the header comment).
  std::vector<Triple> sampled;
  sampled.reserve(num_probes);
  {
    auto ts = store.triples();
    const size_t stride = std::max<size_t>(1, n / num_probes);
    for (size_t i = 0; i < n && sampled.size() < num_probes; i += stride)
      sampled.push_back(ts[i]);
  }

  std::vector<ProbeResult> probes;
  std::printf("%-6s %12s %10s %14s\n", "shape", "probes", "ns/probe",
              "matches");
  for (const Shape& shape : kShapes) {
    std::vector<TriplePatternIds> queries;
    if (shape.s || shape.p || shape.o) {
      queries.reserve(sampled.size());
      for (const Triple& t : sampled) {
        TriplePatternIds q;
        if (shape.s) q.s = t.s;
        if (shape.p) q.p = t.p;
        if (shape.o) q.o = t.o;
        queries.push_back(q);
      }
      std::sort(queries.begin(), queries.end(),
                [](const TriplePatternIds& a, const TriplePatternIds& b) {
                  if (a.s != b.s) return a.s < b.s;
                  if (a.p != b.p) return a.p < b.p;
                  return a.o < b.o;
                });
    } else {
      // The unbound shape resolves the full-scan range; probe it a few
      // times only (each probe is O(1) index selection, the interesting
      // number is the scan throughput below).
      queries.resize(64);
    }

    ProbeResult r;
    r.shape = shape.name;
    r.probes = queries.size();
    double best_ms = 1e300;
    for (size_t rep = 0; rep < repeat; ++rep) {
      Timer timer;
      uint64_t matches = RunProbes(store, queries);
      best_ms = std::min(best_ms, timer.ElapsedMillis());
      r.matches = matches;
    }
    r.ns_per_probe = best_ms * 1e6 / static_cast<double>(r.probes);
    std::printf("%-6s %12zu %10.1f %14llu\n", r.shape.c_str(), r.probes,
                r.ns_per_probe, static_cast<unsigned long long>(r.matches));
    probes.push_back(std::move(r));
  }

  // Scan throughput: the full store scan and the sum of all by-predicate
  // scans (the adjacency walks both engines bottom out in).
  std::vector<ScanResult> scans;
  {
    ScanResult full;
    full.scan = "full";
    double best_ms = 1e300;
    for (size_t rep = 0; rep < repeat; ++rep) {
      uint64_t count = 0, sum = 0;
      Timer timer;
      // The checksum reads all three components, so the loop cannot be
      // folded into a range-size lookup by the optimizer.
      store.Scan(TriplePatternIds{}, [&](const Triple& t) {
        ++count;
        sum += t.s + t.p + t.o;
        return true;
      });
      best_ms = std::min(best_ms, timer.ElapsedMillis());
      full.triples = count;
      full.checksum = sum;
    }
    full.ms = best_ms;
    full.triples_per_sec = full.triples / (best_ms / 1e3);
    scans.push_back(full);
  }
  {
    // Distinct predicates from the sampled triples (LUBM has ~20).
    std::vector<TermId> preds;
    for (const Triple& t : sampled) preds.push_back(t.p);
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    ScanResult by_p;
    by_p.scan = "by_predicate";
    double best_ms = 1e300;
    for (size_t rep = 0; rep < repeat; ++rep) {
      uint64_t count = 0, sum = 0;
      Timer timer;
      for (TermId p : preds) {
        TriplePatternIds q;
        q.p = p;
        store.Scan(q, [&](const Triple& t) {
          ++count;
          sum += t.s + t.p + t.o;
          return true;
        });
      }
      best_ms = std::min(best_ms, timer.ElapsedMillis());
      by_p.triples = count;
      by_p.checksum = sum;
    }
    by_p.ms = best_ms;
    by_p.triples_per_sec = by_p.triples / (best_ms / 1e3);
    scans.push_back(by_p);
  }
  for (const ScanResult& s : scans)
    std::printf("scan %-13s %10.2f ms %14.0f triples/s\n", s.scan.c_str(),
                s.ms, s.triples_per_sec);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"scan\",\n  \"layout\": \""
        << (is_csr ? "csr" : "flat") << "\",\n  \"hardware_threads\": "
        << std::thread::hardware_concurrency()
        << ",\n  \"lubm_universities\": " << lubm_universities
        << ",\n  \"store_triples\": " << n << ",\n  \"bytes_per_triple\": "
        << bytes_per_triple << ",\n  \"flat_baseline_bytes_per_triple\": "
        << kFlatBytesPerTriple << ",\n  \"probe_ns\": [\n";
    for (size_t i = 0; i < probes.size(); ++i) {
      const ProbeResult& r = probes[i];
      out << "    {\"shape\": \"" << r.shape << "\", \"probes\": " << r.probes
          << ", \"ns_per_probe\": " << r.ns_per_probe
          << ", \"matches\": " << r.matches << "}"
          << (i + 1 < probes.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"scan\": [\n";
    for (size_t i = 0; i < scans.size(); ++i) {
      const ScanResult& s = scans[i];
      out << "    {\"scan\": \"" << s.scan << "\", \"ms\": " << s.ms
          << ", \"triples\": " << s.triples << ", \"checksum\": " << s.checksum
          << ", \"triples_per_sec\": " << s.triples_per_sec << "}"
          << (i + 1 < scans.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cerr << "# wrote " << json_path << "\n";
  }
  return 0;
}
