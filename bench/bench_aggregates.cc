// Aggregation / SPARQL 1.1 surface benchmark.
//
// Times the four PR-8 feature families on LUBM-scale data: GROUP BY hash
// aggregation (sequential vs morsel-parallel on the shared pool), a
// property-path closure, and CONSTRUCT template instantiation. Every
// parallel run is verified bit-identical to the sequential run before its
// time is reported — parallel aggregation merges morsel partials in
// morsel order precisely so this holds.
//
// Usage:
//   bench_aggregates [--json FILE] [--parallelism 1,2,4,8] [--repeat N]
//                    [--lubm N] [--morsel N]
//
// The recorded JSON includes `hardware_threads`: on a single-core
// container the thread-scaling cells are flat by construction, and the
// field is what distinguishes "no speedup available" from "no speedup
// achieved".
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/executor_pool.h"
#include "util/timer.h"

namespace {

using namespace sparqluo;
using namespace sparqluo::bench;

constexpr const char* kPrologue =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> "
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> ";

struct BenchQuery {
  const char* id;
  std::string sparql;
};

std::vector<BenchQuery> Workload() {
  return {
      {"count-per-class",
       std::string(kPrologue) +
           "SELECT ?t (COUNT(*) AS ?n) WHERE { ?x rdf:type ?t } GROUP BY ?t"},
      {"count-distinct-advisees",
       std::string(kPrologue) +
           "SELECT ?a (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ub:advisor ?a } "
           "GROUP BY ?a"},
      {"minmax-name-per-dept",
       std::string(kPrologue) +
           "SELECT ?d (MIN(?n) AS ?lo) (MAX(?n) AS ?hi) (COUNT(?n) AS ?c) "
           "WHERE { ?x ub:memberOf ?d . ?x ub:name ?n } GROUP BY ?d"},
      {"count-enrollments",
       std::string(kPrologue) +
           "SELECT (COUNT(*) AS ?n) (COUNT(DISTINCT ?c) AS ?d) WHERE "
           "{ ?s ub:takesCourse ?c }"},
      {"suborg-closure",
       std::string(kPrologue) +
           "SELECT ?x ?y WHERE { ?x ub:subOrganizationOf+ ?y }"},
      {"construct-members",
       std::string(kPrologue) +
           "CONSTRUCT { ?d ub:hasMember ?x } WHERE { ?x ub:memberOf ?d }"},
  };
}

struct Cell {
  std::string query;
  size_t parallelism = 0;
  double ms = 0.0;       ///< Best-of-repeat wall time.
  double speedup = 1.0;  ///< Sequential ms / this ms.
  size_t rows = 0;
  bool ok = false;
};

bool BitIdentical(const BindingSet& a, const BindingSet& b) {
  if (a.schema() != b.schema() || a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r)
    for (size_t c = 0; c < a.width(); ++c)
      if (a.At(r, c) != b.At(r, c)) return false;
  return true;
}

std::vector<size_t> SplitSizes(const std::string& csv) {
  std::vector<size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(static_cast<size_t>(std::atol(item.c_str())));
  return out;
}

void WriteJson(const std::vector<Cell>& cells, size_t morsel_size,
               size_t universities, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"aggregates\",\n  \"hardware_threads\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"lubm_universities\": " << universities
      << ",\n  \"morsel_size\": " << morsel_size << ",\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"query\": \"" << c.query << "\", \"parallelism\": "
        << c.parallelism << ", \"ms\": " << c.ms << ", \"speedup\": "
        << c.speedup << ", \"rows\": " << c.rows << ", \"ok\": "
        << (c.ok ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "# wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<size_t> degrees = {1, 2, 4, 8};
  size_t repeat = 3;
  size_t universities = LubmUniversities();
  size_t morsel_size = 1024;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--json" && (v = next())) {
      json_path = v;
    } else if (arg == "--parallelism" && (v = next())) {
      degrees = SplitSizes(v);
    } else if (arg == "--repeat" && (v = next())) {
      repeat = std::max<size_t>(1, static_cast<size_t>(std::atol(v)));
    } else if (arg == "--lubm" && (v = next())) {
      universities = static_cast<size_t>(std::atol(v));
    } else if (arg == "--morsel" && (v = next())) {
      morsel_size = static_cast<size_t>(std::atol(v));
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    }
  }

  // Degree 1 runs first: it is the bit-identity reference and the speedup
  // denominator for every other degree.
  {
    std::vector<size_t> normalized{1};
    for (size_t d : degrees)
      if (d != 1) normalized.push_back(d);
    degrees = std::move(normalized);
  }

  size_t max_degree = 1;
  for (size_t d : degrees) max_degree = std::max(max_degree, d);
  ExecutorPool pool(max_degree > 1 ? max_degree - 1 : 1);

  auto db = MakeLubm(universities, EngineKind::kWco);

  std::vector<Cell> cells;
  bool all_ok = true;
  std::printf("%-24s %12s %10s %9s %10s\n", "query", "parallelism", "ms",
              "speedup", "rows");
  for (const BenchQuery& q : Workload()) {
    double seq_ms = 0.0;
    Result<BindingSet> reference = Status::Internal("unset");
    for (size_t degree : degrees) {
      ExecOptions opts = ExecOptions::Full();
      opts.max_intermediate_rows = kRowLimit;
      opts.parallel.parallelism = degree;
      opts.parallel.morsel_size = morsel_size;
      opts.parallel.pool = degree > 1 ? &pool : nullptr;

      Cell cell;
      cell.query = q.id;
      cell.parallelism = degree;
      cell.ms = 1e300;
      for (size_t rep = 0; rep < repeat; ++rep) {
        Timer timer;
        auto r = db->Query(q.sparql, opts);
        cell.ms = std::min(cell.ms, timer.ElapsedMillis());
        cell.ok = r.ok();
        if (r.ok()) {
          cell.rows = r->size();
          if (degree == 1 && !reference.ok()) {
            reference = std::move(r);
          } else if (reference.ok() && !BitIdentical(*r, *reference)) {
            std::cerr << "# MISMATCH: " << q.id << " at parallelism " << degree
                      << " diverged from sequential\n";
            cell.ok = false;
          }
        }
      }
      if (degree == 1) seq_ms = cell.ms;
      cell.speedup = cell.ms > 0.0 && seq_ms > 0.0 ? seq_ms / cell.ms : 1.0;
      all_ok = all_ok && cell.ok;
      std::printf("%-24s %12zu %10.2f %9.2f %10zu\n", cell.query.c_str(),
                  cell.parallelism, cell.ms, cell.speedup, cell.rows);
      std::fflush(stdout);
      cells.push_back(cell);
    }
  }
  if (!json_path.empty()) WriteJson(cells, morsel_size, universities, json_path);
  return all_ok ? 0 : 1;
}
