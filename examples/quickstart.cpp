// Quickstart: load RDF data, run SPARQL-UO queries, inspect results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "engine/database.h"

int main() {
  using namespace sparqluo;

  // 1. Create an in-memory database and load triples. Data can come from
  //    N-Triples files (LoadNTriplesFile) or be added programmatically.
  Database db;
  Status st = db.LoadNTriplesString(R"(
<http://ex.org/alice> <http://ex.org/knows> <http://ex.org/bob> .
<http://ex.org/alice> <http://ex.org/name> "Alice" .
<http://ex.org/bob>   <http://ex.org/knows> <http://ex.org/carol> .
<http://ex.org/bob>   <http://ex.org/name> "Bob" .
<http://ex.org/carol> <http://ex.org/name> "Carol" .
<http://ex.org/carol> <http://ex.org/email> "carol@example.org" .
)");
  if (!st.ok()) {
    std::cerr << "load failed: " << st.ToString() << "\n";
    return 1;
  }

  // 2. Finalize: builds the permutation indexes, statistics and the BGP
  //    engine (gStore-style WCO join by default; EngineKind::kHashJoin
  //    selects the Jena-style binary-join engine).
  db.Finalize(EngineKind::kWco);
  std::printf("loaded %zu triples\n\n", db.size());

  // 3. Run a SPARQL-UO query. OPTIONAL keeps people without an email.
  const char* query = R"(
    PREFIX ex: <http://ex.org/>
    SELECT ?person ?name ?email WHERE {
      ?person ex:name ?name .
      OPTIONAL { ?person ex:email ?email . }
    })";

  // ExecOptions picks the optimization level: Base(), TT(), CP() or Full().
  // Full() = cost-driven BE-tree transformation + candidate pruning.
  ExecMetrics metrics;
  auto result = db.Query(query, ExecOptions::Full(), &metrics);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }

  // 4. Inspect results. Unbound OPTIONAL variables print as UNBOUND.
  auto parsed = db.Parse(query);
  std::cout << result->ToString(parsed->vars, db.dict()) << "\n";
  std::printf("rows: %zu, evaluated in %.3f ms (plan: %.3f ms)\n",
              result->size(), metrics.exec_ms, metrics.transform_ms);

  // 5. UNION groups diversely-represented data.
  const char* union_query = R"(
    PREFIX ex: <http://ex.org/>
    SELECT ?contact WHERE {
      { ?person ex:email ?contact . } UNION { ?person ex:name ?contact . }
    })";
  auto contacts = db.Query(union_query);
  std::printf("\n%zu contact values via UNION\n", contacts->size());
  return 0;
}
