// The paper's Figure 1 scenario on generated DBpedia-like data: UNION to
// gather names stored under foaf:name OR rdfs:label, and OPTIONAL to keep
// presidents that lack an owl:sameAs reference — comparing all four
// optimization levels (base / TT / CP / full).
#include <cstdio>

#include "engine/database.h"
#include "workload/dbpedia_generator.h"

int main() {
  using namespace sparqluo;

  std::printf("Generating DBpedia-like graph...\n");
  Database db;
  // Add the presidents cluster from Figure 1 on top of the generated data.
  {
    DbpediaConfig cfg;
    cfg.articles = 30000;
    GenerateDbpedia(cfg, &db);
    auto iri = [](const std::string& s) { return Term::Iri(s); };
    Term wikilink = iri("http://dbpedia.org/ontology/wikiPageWikiLink");
    Term potus = iri("http://dbpedia.org/resource/President_of_the_United_States");
    Term foaf_name = iri("http://xmlns.com/foaf/0.1/name");
    Term label = iri("http://www.w3.org/2000/01/rdf-schema#label");
    Term same = iri("http://www.w3.org/2002/07/owl#sameAs");
    const char* presidents[] = {
        "George_Washington", "Thomas_Jefferson", "Abraham_Lincoln",
        "Theodore_Roosevelt", "Franklin_D._Roosevelt", "John_F._Kennedy",
        "George_H._W._Bush", "Bill_Clinton", "George_W._Bush",
        "Barack_Obama", "Joe_Biden"};
    int i = 0;
    for (const char* p : presidents) {
      Term pres = iri(std::string("http://dbpedia.org/resource/") + p);
      db.AddTriple(pres, wikilink, potus);
      // Half the names under foaf:name, half under rdfs:label (Fig. 1a).
      if (i % 2 == 0) {
        db.AddTriple(pres, foaf_name, Term::LangLiteral(p, "en"));
      } else {
        db.AddTriple(pres, label, Term::LangLiteral(p, "en"));
      }
      // Not every president has an alternative reference (Fig. 1b).
      if (i % 3 != 0)
        db.AddTriple(pres, same,
                     iri(std::string("http://freebase.example/") + p));
      ++i;
    }
  }
  db.Finalize(EngineKind::kWco);
  std::printf("%zu triples ready\n\n", db.size());

  const char* prefixes = R"(
PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX dbr: <http://dbpedia.org/resource/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
)";

  struct Scenario {
    const char* title;
    std::string query;
  };
  Scenario scenarios[] = {
      {"Figure 1(a): names via UNION",
       std::string(prefixes) +
           "SELECT ?x ?name WHERE {\n"
           "  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .\n"
           "  { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }\n}"},
      {"Figure 1(b): optional sameAs",
       std::string(prefixes) +
           "SELECT ?x ?same WHERE {\n"
           "  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .\n"
           "  OPTIONAL { ?x owl:sameAs ?same }\n}"},
      {"Figure 2: combined UNION + OPTIONAL",
       std::string(prefixes) +
           "SELECT * WHERE {\n"
           "  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .\n"
           "  { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }\n"
           "  OPTIONAL { { ?x owl:sameAs ?same } UNION { ?same owl:sameAs ?x } }\n}"},
  };

  for (const Scenario& s : scenarios) {
    std::printf("=== %s ===\n", s.title);
    std::printf("%-6s %10s %12s %14s %12s\n", "mode", "rows", "exec(ms)",
                "join-space", "pruned");
    for (const ExecOptions& opts :
         {ExecOptions::Base(), ExecOptions::TT(), ExecOptions::CP(),
          ExecOptions::Full()}) {
      ExecMetrics m;
      auto r = db.Query(s.query, opts, &m);
      if (!r.ok()) {
        std::printf("%-6s failed: %s\n", opts.Name(),
                    r.status().ToString().c_str());
        continue;
      }
      std::printf("%-6s %10zu %12.3f %14.0f %12llu\n", opts.Name(), r->size(),
                  m.exec_ms, m.join_space,
                  static_cast<unsigned long long>(m.bgp.candidates_pruned));
    }
    std::printf("\n");
  }
  return 0;
}
