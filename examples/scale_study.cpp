// Miniature of the paper's scalability study (Figure 12): runs the `full`
// approach on q1.1-q1.6 while sweeping the LUBM scale factor, printing the
// execution-time growth with dataset size.
#include <cstdio>
#include <vector>

#include "engine/database.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

int main(int argc, char** argv) {
  using namespace sparqluo;

  // Scale factors (numbers of universities); override via argv.
  std::vector<size_t> scales = {1, 2, 4};
  if (argc > 1) {
    scales.clear();
    for (int i = 1; i < argc; ++i)
      scales.push_back(static_cast<size_t>(std::atol(argv[i])));
  }

  std::printf("%-8s %-12s", "scale", "triples");
  for (const PaperQuery& pq : LubmPaperQueries()) {
    if (pq.id.rfind("q1.", 0) == 0) std::printf(" %10s", pq.id.c_str());
  }
  std::printf("\n");

  for (size_t scale : scales) {
    Database db;
    LubmConfig cfg;
    cfg.universities = scale;
    GenerateLubm(cfg, &db);
    db.Finalize(EngineKind::kWco);
    std::printf("%-8zu %-12zu", scale, db.size());
    for (const PaperQuery& pq : LubmPaperQueries()) {
      if (pq.id.rfind("q1.", 0) != 0) continue;
      ExecMetrics m;
      auto r = db.Query(pq.sparql, ExecOptions::Full(), &m);
      if (r.ok()) {
        std::printf(" %8.1fms", m.transform_ms + m.exec_ms);
      } else {
        std::printf(" %10s", "err");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
