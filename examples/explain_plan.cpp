// Plan inspection: shows the BE-tree of a query before and after the
// cost-driven merge/inject transformations, with the Δ-cost reasoning, and
// round-trips the transformed plan back to SPARQL text.
#include <cstdio>
#include <iostream>

#include "betree/builder.h"
#include "betree/serializer.h"
#include "engine/database.h"
#include "optimizer/transformer.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

int main(int argc, char** argv) {
  using namespace sparqluo;

  std::printf("Generating LUBM(1)...\n");
  Database db;
  LubmConfig cfg;
  cfg.universities = 1;
  GenerateLubm(cfg, &db);
  db.Finalize(EngineKind::kWco);
  std::printf("%zu triples ready\n\n", db.size());

  // Explain a paper query (default q1.6 on LUBM; pass an id to override).
  std::string id = argc > 1 ? argv[1] : "q1.6";
  const PaperQuery* pq = FindQuery(LubmPaperQueries(), id);
  if (pq == nullptr) {
    std::fprintf(stderr, "unknown query id %s\n", id.c_str());
    return 1;
  }

  auto q = db.Parse(pq->sparql);
  if (!q.ok()) {
    std::cerr << q.status().ToString() << "\n";
    return 1;
  }

  BeTree tree = BuildBeTree(*q);
  std::printf("=== %s: original BE-tree ===\n%s\n", id.c_str(),
              DebugString(tree, q->vars).c_str());
  std::printf("Count_BGP = %zu, Depth = %zu\n\n", tree.CountBgp(),
              tree.Depth());

  CostModel cost(db.engine());
  // Show the Δ-cost of each candidate transformation at the top level.
  BeNode* root = tree.root.get();
  for (size_t i = 0; i < root->children.size(); ++i) {
    if (!root->children[i]->is_bgp()) continue;
    for (size_t j = 0; j < root->children.size(); ++j) {
      if (root->children[j]->is_union()) {
        double delta = DecideMergeDelta(*root, i, j, cost);
        std::printf("merge(child %zu -> UNION at %zu): delta-cost = %.1f%s\n",
                    i, j, delta, delta < 0 ? "  [APPLY]" : "  [skip]");
      }
      if (j > i && root->children[j]->is_optional()) {
        double delta = DecideInjectDelta(*root, i, j, cost);
        std::printf("inject(child %zu -> OPTIONAL at %zu): delta-cost = %.1f%s\n",
                    i, j, delta, delta < 0 ? "  [APPLY]" : "  [skip]");
      }
    }
  }

  TransformStats stats;
  MultiLevelTransform(&tree, cost, TransformOptions{}, &stats);
  std::printf("\napplied %zu merges, %zu injects (%g delta-cost evaluations)\n\n",
              stats.merges, stats.injects, stats.decide_calls);
  std::printf("=== transformed BE-tree ===\n%s\n",
              DebugString(tree, q->vars).c_str());

  std::printf("=== transformed plan as SPARQL ===\n%s\n\n",
              SerializeToQuery(tree, q->vars).c_str());

  // Execute both plans to show the effect.
  Executor exec(db.engine(), db.dict(), db.store());
  BeTree original = BuildBeTree(*q);
  for (auto& [label, t] : {std::pair<const char*, BeTree*>{"original", &original},
                           std::pair<const char*, BeTree*>{"transformed", &tree}}) {
    ExecMetrics m;
    BindingSet r = exec.EvaluateTree(*t, ExecOptions{}, &m);
    std::printf("%-12s rows=%zu exec=%.2f ms join-space=%.0f\n", label,
                r.size(), m.exec_ms, m.join_space);
  }
  return 0;
}
