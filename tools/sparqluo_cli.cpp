// sparqluo command-line shell.
//
// Usage:
//   sparqluo_cli --data FILE.nt [options] [QUERY | --query-file FILE]
//   sparqluo_cli --lubm N  [options] ...       (generate LUBM with N univs)
//   sparqluo_cli --dbpedia N [options] ...     (generate N-article DBpedia)
//   sparqluo_cli --snapshot FILE.bin ...       (reload a binary snapshot)
//   ... --save-snapshot FILE.bin               (persist the loaded data)
//
// Options:
//   --snapshot-format v1|v2   format for --save-snapshot (default v2: the
//                             mmap section format; v1 = data-only records,
//                             see docs/snapshot_format.md). --snapshot
//                             loads either format, auto-detected.
//   --engine auto|wco|hashjoin  BGP engine (default wco; auto picks per BGP
//                             by estimated cost)
//   --mode base|tt|cp|full    optimization level (default full)
//   --format tsv|csv|json|nt  output format (default tsv; CONSTRUCT
//                             queries default to nt = N-Triples)
//   --explain                 print the BE-tree before/after transformation
//   --explain-analyze         trace each query and print the span tree
//                             (phase timings, per-BGP/morsel spans) after it
//   --trace-out FILE          write one Chrome-trace-event JSON file
//                             covering every executed query (load it in
//                             Perfetto or chrome://tracing)
//   --metrics-out FILE        write the process metrics registry in
//                             Prometheus text format on exit
//   --paper-queries           append the paper's LUBM benchmark queries
//                             (Appendix A, q1.1-q2.6) to the query batch
//   --slow-query-ms N         log queries at/over N ms at WARN (serving)
//   --slow-query-sample K     log every Kth slow query (default 1 = all)
//   --stats                   print dataset statistics and exit
//   --max-rows N              abort when an intermediate exceeds N rows
//   --parallelism N           intra-query parallelism: evaluate each BGP
//                             with up to N workers via morsel-driven
//                             execution (0 = all hardware threads; results
//                             are bit-identical to sequential execution)
//   --concurrency N           serve the query batch through a QueryService
//                             with N worker threads (enables batch serving)
//   --repeat K                submit each query K times (batch serving)
//   --deadline-ms N           per-query deadline in milliseconds
//   --no-plan-cache           disable the shared plan cache (batch serving)
//   --result-cache-mb N       byte budget for the version-keyed result
//                             cache in MiB (default 64; batch serving)
//   --no-result-cache         disable the result cache and in-flight
//                             query dedup (batch serving)
//   --update-file FILE        apply SPARQL INSERT DATA / DELETE DATA
//                             blocks (blank-line separated) after loading,
//                             each block committed as one version
//   --wal-dir DIR             durable commits: every update is written to
//                             a write-ahead log in DIR before it becomes
//                             visible, and opening replays whatever the
//                             log holds past the loaded snapshot
//                             (docs/durability.md). --save-snapshot
//                             checkpoints the log.
//   --fsync always|off|N      WAL durability policy (default always):
//                             fsync before acknowledging each commit, never,
//                             or in the background every N milliseconds
//   --serve PORT              serve the loaded data over HTTP as a SPARQL
//                             Protocol endpoint (docs/http_endpoint.md):
//                             GET/POST /sparql, POST /update, /metrics,
//                             /healthz. PORT 0 picks an ephemeral port
//                             (printed on startup). --concurrency sizes the
//                             worker pool, --deadline-ms the default query
//                             deadline. SIGINT/SIGTERM shut down gracefully.
//   --bind ADDR               listen address for --serve (default 127.0.0.1)
//
// Without a query argument, reads blocks from stdin (one per blank-line-
// separated block; end with EOF). A block whose first operation is INSERT
// DATA / DELETE DATA is applied as a committed update (docs/updates.md);
// anything else runs as a query. With --concurrency N, blocks are served
// through a QueryService: queries are submitted concurrently, updates act
// as barriers (pending queries drain, the update commits, serving
// resumes), and aggregate service stats (QPS, p50/p99, cache hit rate,
// commits) are printed instead of result rows.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "betree/builder.h"
#include "betree/serializer.h"
#include "engine/database.h"
#include "engine/result_writer.h"
#include "engine/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/transformer.h"
#include "optimizer/well_designed.h"
#include "server/query_service.h"
#include "server/sparql_endpoint.h"
#include "util/timer.h"
#include "workload/dbpedia_generator.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

namespace {

using namespace sparqluo;

struct CliOptions {
  std::string data_file;
  std::string snapshot_in;
  std::string snapshot_out;
  SnapshotFormat snapshot_format = SnapshotFormat::kV2;
  size_t lubm = 0;
  size_t dbpedia = 0;
  EngineKind engine = EngineKind::kWco;
  ExecOptions exec = ExecOptions::Full();
  ResultFormat format = ResultFormat::kTsv;
  bool format_set = false;  ///< --format given: overrides CONSTRUCT's NT default.
  bool explain = false;
  bool explain_analyze = false;
  std::string trace_out;
  std::string metrics_out;
  bool paper_queries = false;
  double slow_query_ms = 0.0;
  size_t slow_query_sample = 1;
  bool stats_only = false;
  size_t concurrency = 0;  ///< > 0 switches to batch serving.
  size_t parallelism = 1;  ///< Intra-query workers; 0 = hardware threads.
  size_t repeat = 1;
  long deadline_ms = 0;
  bool plan_cache = true;
  bool result_cache = true;
  size_t result_cache_mb = 64;
  std::string query;
  std::string query_file;
  std::string update_file;
  std::string wal_dir;
  std::string fsync = "always";
  long serve_port = -1;  ///< >= 0 switches to HTTP serving (0 = ephemeral).
  std::string bind_address = "127.0.0.1";
};

/// Splits text into blank-line-separated blocks.
std::vector<std::string> SplitBlocks(std::istream& in) {
  std::vector<std::string> blocks;
  std::string block, line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      if (!block.empty()) blocks.push_back(block);
      block.clear();
      continue;
    }
    block += line + "\n";
  }
  if (!block.empty()) blocks.push_back(block);
  return blocks;
}

/// True when the block's first operation keyword (after any PREFIX
/// prologue) is INSERT or DELETE — i.e. it should be routed to the update
/// path rather than the query path.
bool LooksLikeUpdate(const std::string& text) {
  std::string upper;
  upper.reserve(text.size());
  for (char c : text)
    upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  auto first_word_at = [&](const char* word) {
    size_t pos = upper.find(word);
    // Require a standalone word (start/whitespace-delimited) so IRIs or
    // literals containing the letters don't trigger.
    while (pos != std::string::npos) {
      bool start_ok = pos == 0 || std::isspace(static_cast<unsigned char>(
                                      upper[pos - 1])) != 0;
      size_t end = pos + std::strlen(word);
      bool end_ok = end >= upper.size() ||
                    std::isspace(static_cast<unsigned char>(upper[end])) != 0;
      if (start_ok && end_ok) return pos;
      pos = upper.find(word, pos + 1);
    }
    return std::string::npos;
  };
  size_t update_pos = std::min(first_word_at("INSERT"), first_word_at("DELETE"));
  size_t query_pos = std::min({first_word_at("SELECT"), first_word_at("ASK"),
                               first_word_at("CONSTRUCT")});
  return update_pos != std::string::npos && update_pos < query_pos;
}

/// Collects the trace contexts of executed queries for --trace-out.
struct TraceSink {
  bool collect = false;
  std::vector<std::shared_ptr<TraceContext>> traces;

  void Add(std::shared_ptr<TraceContext> t) {
    if (collect && t != nullptr) traces.push_back(std::move(t));
  }
};

/// Writes one Chrome-trace-event JSON file: each query is a pid lane, all
/// lanes share the earliest context's epoch as the common timeline origin.
int WriteTraceFile(const std::string& path,
                   const std::vector<std::shared_ptr<TraceContext>>& traces) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  auto base = std::chrono::steady_clock::time_point::max();
  for (const auto& t : traces) base = std::min(base, t->epoch());
  std::string body;
  size_t total = 0;
  for (size_t i = 0; i < traces.size(); ++i) {
    std::string events;
    size_t n = traces[i]->AppendChromeTraceEvents(
        static_cast<int>(i + 1), traces[i]->EpochOffsetUs(base), &events);
    if (n == 0) continue;
    if (total > 0) body += ",\n";
    body += events;
    total += n;
  }
  out << "{\"traceEvents\":[\n" << body << "\n]}\n";
  std::cerr << "# trace: " << total << " spans over " << traces.size()
            << " queries written to " << path << "\n";
  return 0;
}

int WriteMetricsFile(const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << MetricRegistry::Global().RenderPrometheus();
  std::cerr << "# metrics written to " << path << "\n";
  return 0;
}

/// Applies one update block and prints the commit outcome.
int RunUpdate(Database& db, const std::string& text) {
  auto commit = db.Update(text);
  if (!commit.ok()) {
    std::cerr << "update failed: " << commit.status().ToString() << "\n";
    return 1;
  }
  std::cerr << "# update: +" << commit->inserted << " -" << commit->deleted
            << " triples -> version " << commit->version << " ("
            << commit->store_size << " total) in " << commit->commit_ms
            << " ms\n";
  return 0;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--data FILE.nt | --lubm N | --dbpedia N | --snapshot FILE) "
               "[--save-snapshot FILE] [--snapshot-format v1|v2] [--engine "
               "auto|wco|hashjoin] [--mode base|tt|cp|full] [--format "
               "tsv|csv|json|nt] [--explain] [--explain-analyze] [--trace-out "
               "FILE] [--metrics-out FILE] [--paper-queries] [--stats] "
               "[--max-rows N] [--parallelism N] [--concurrency N] "
               "[--repeat K] [--deadline-ms N] [--slow-query-ms N] "
               "[--slow-query-sample K] [--no-plan-cache] "
               "[--result-cache-mb N] [--no-result-cache] "
               "[--update-file FILE] [--wal-dir DIR [--fsync always|off|N]] "
               "[--serve PORT [--bind ADDR]] [QUERY | UPDATE]\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (!v) return false;
      opts->data_file = v;
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (!v) return false;
      opts->snapshot_in = v;
    } else if (arg == "--save-snapshot") {
      const char* v = next();
      if (!v) return false;
      opts->snapshot_out = v;
    } else if (arg == "--snapshot-format") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "v1") == 0) {
        opts->snapshot_format = SnapshotFormat::kV1;
      } else if (std::strcmp(v, "v2") == 0) {
        opts->snapshot_format = SnapshotFormat::kV2;
      } else {
        return false;
      }
    } else if (arg == "--lubm") {
      const char* v = next();
      if (!v) return false;
      opts->lubm = static_cast<size_t>(std::atol(v));
    } else if (arg == "--dbpedia") {
      const char* v = next();
      if (!v) return false;
      opts->dbpedia = static_cast<size_t>(std::atol(v));
    } else if (arg == "--engine") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "wco") == 0) {
        opts->engine = EngineKind::kWco;
      } else if (std::strcmp(v, "hashjoin") == 0) {
        opts->engine = EngineKind::kHashJoin;
      } else if (std::strcmp(v, "auto") == 0) {
        opts->engine = EngineKind::kAdaptive;
      } else {
        return false;
      }
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "base") == 0) opts->exec = ExecOptions::Base();
      else if (std::strcmp(v, "tt") == 0) opts->exec = ExecOptions::TT();
      else if (std::strcmp(v, "cp") == 0) opts->exec = ExecOptions::CP();
      else if (std::strcmp(v, "full") == 0) opts->exec = ExecOptions::Full();
      else return false;
    } else if (arg == "--format") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "tsv") == 0) opts->format = ResultFormat::kTsv;
      else if (std::strcmp(v, "csv") == 0) opts->format = ResultFormat::kCsv;
      else if (std::strcmp(v, "json") == 0) opts->format = ResultFormat::kJson;
      else if (std::strcmp(v, "nt") == 0) opts->format = ResultFormat::kNTriples;
      else return false;
      opts->format_set = true;
    } else if (arg == "--explain") {
      opts->explain = true;
    } else if (arg == "--explain-analyze") {
      opts->explain_analyze = true;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      opts->trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      opts->metrics_out = v;
    } else if (arg == "--paper-queries") {
      opts->paper_queries = true;
    } else if (arg == "--slow-query-ms") {
      const char* v = next();
      if (!v) return false;
      opts->slow_query_ms = std::atof(v);
    } else if (arg == "--slow-query-sample") {
      const char* v = next();
      if (!v) return false;
      opts->slow_query_sample = static_cast<size_t>(std::atol(v));
      if (opts->slow_query_sample == 0) opts->slow_query_sample = 1;
    } else if (arg == "--stats") {
      opts->stats_only = true;
    } else if (arg == "--max-rows") {
      const char* v = next();
      if (!v) return false;
      opts->exec.max_intermediate_rows = static_cast<size_t>(std::atol(v));
    } else if (arg == "--parallelism") {
      const char* v = next();
      if (!v) return false;
      opts->parallelism = static_cast<size_t>(std::atol(v));
    } else if (arg == "--concurrency") {
      const char* v = next();
      if (!v) return false;
      opts->concurrency = static_cast<size_t>(std::atol(v));
    } else if (arg == "--repeat") {
      const char* v = next();
      if (!v) return false;
      opts->repeat = static_cast<size_t>(std::atol(v));
      if (opts->repeat == 0) opts->repeat = 1;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return false;
      opts->deadline_ms = std::atol(v);
    } else if (arg == "--no-plan-cache") {
      opts->plan_cache = false;
    } else if (arg == "--no-result-cache") {
      opts->result_cache = false;
    } else if (arg == "--result-cache-mb") {
      const char* v = next();
      if (!v) return false;
      opts->result_cache_mb = static_cast<size_t>(std::atol(v));
    } else if (arg == "--query-file") {
      const char* v = next();
      if (!v) return false;
      opts->query_file = v;
    } else if (arg == "--update-file") {
      const char* v = next();
      if (!v) return false;
      opts->update_file = v;
    } else if (arg == "--wal-dir") {
      const char* v = next();
      if (!v) return false;
      opts->wal_dir = v;
    } else if (arg == "--fsync") {
      const char* v = next();
      if (!v) return false;
      opts->fsync = v;
    } else if (arg == "--serve") {
      const char* v = next();
      if (!v) return false;
      opts->serve_port = std::atol(v);
      if (opts->serve_port < 0 || opts->serve_port > 65535) return false;
    } else if (arg == "--bind") {
      const char* v = next();
      if (!v) return false;
      opts->bind_address = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return false;
    } else {
      opts->query = arg;
    }
  }
  return !opts->data_file.empty() || !opts->snapshot_in.empty() ||
         opts->lubm > 0 || opts->dbpedia > 0;
}

/// Batch serving: submits every collected block (x repeat) to a
/// QueryService and reports per-block outcomes plus aggregate stats.
/// Queries are submitted concurrently; update blocks act as barriers —
/// every pending query drains, the update commits as one version, and
/// serving resumes against the new version.
int RunService(Database& db, const CliOptions& opts,
               const std::vector<std::string>& blocks, TraceSink* sink) {
  QueryService::Options sopts;
  sopts.num_threads = opts.concurrency;
  sopts.enable_plan_cache = opts.plan_cache;
  sopts.enable_result_cache = opts.result_cache;
  sopts.enable_dedup = opts.result_cache;
  sopts.result_cache_bytes = opts.result_cache_mb << 20;
  sopts.intra_query_parallelism = opts.parallelism;
  sopts.trace_queries = sink->collect || opts.explain_analyze;
  sopts.slow_query_ms = opts.slow_query_ms;
  sopts.slow_query_sample = opts.slow_query_sample;
  // Blocks are submitted up front (between update barriers); size the
  // admission queue to hold them so a big --repeat doesn't trip the
  // overload rejection meant for live traffic.
  sopts.max_queue = std::max<size_t>(sopts.max_queue,
                                     blocks.size() * opts.repeat + 16);
  if (opts.deadline_ms > 0)
    sopts.default_deadline = std::chrono::milliseconds(opts.deadline_ms);
  QueryService service(db, sopts);

  int rc = 0;
  size_t query_count = 0;
  std::vector<std::pair<size_t, std::future<QueryResponse>>> pending;
  auto drain = [&] {
    for (auto& [index, future] : pending) {
      QueryResponse r = future.get();
      std::cerr << "# q" << index << ": ";
      if (r.status.ok()) {
        std::cerr << r.rows.size() << " rows in " << r.total_ms << " ms (v"
                  << r.version << (r.plan_cache_hit ? ", plan cache hit" : "")
                  << ")\n";
      } else {
        std::cerr << r.status.ToString() << "\n";
        rc = 1;
      }
      if (opts.explain_analyze && r.trace != nullptr)
        std::cerr << r.trace->RenderTree();
      sink->Add(std::move(r.trace));
    }
    pending.clear();
  };

  Timer timer;
  for (size_t rep = 0; rep < opts.repeat; ++rep) {
    for (size_t i = 0; i < blocks.size(); ++i) {
      if (LooksLikeUpdate(blocks[i])) {
        drain();  // updates are barriers: settle all reads first
        UpdateRequest up;
        up.text = blocks[i];
        UpdateResponse r = service.SubmitUpdate(std::move(up)).get();
        if (r.status.ok()) {
          std::cerr << "# u" << i + 1 << ": +" << r.commit.inserted << " -"
                    << r.commit.deleted << " -> version " << r.commit.version
                    << " in " << r.total_ms << " ms\n";
        } else {
          std::cerr << "# u" << i + 1 << ": " << r.status.ToString() << "\n";
          rc = 1;
        }
        continue;
      }
      QueryRequest req;
      req.text = blocks[i];
      req.options = opts.exec;
      ++query_count;
      pending.emplace_back(i + 1, service.Submit(std::move(req)));
    }
  }
  drain();
  double wall_ms = timer.ElapsedMillis();
  ServiceStatsSnapshot stats = service.Stats();
  std::cout << "queries\t" << query_count << "\n"
            << "threads\t" << service.num_threads() << "\n"
            << "wall_ms\t" << wall_ms << "\n"
            << "qps\t" << (wall_ms > 0.0 ? 1000.0 * query_count / wall_ms
                                         : 0.0)
            << "\n"
            << "p50_ms\t" << stats.p50_ms << "\n"
            << "p99_ms\t" << stats.p99_ms << "\n"
            << "p999_ms\t" << stats.p999_ms << "\n"
            << "latency_samples\t" << stats.latency_samples << "\n"
            << "slow_queries\t" << stats.slow_queries << "\n"
            << "completed\t" << stats.completed << "\n"
            << "failed\t" << stats.failed << "\n"
            << "aborted_deadline\t" << stats.aborted_deadline << "\n"
            << "aborted_row_limit\t" << stats.aborted_row_limit << "\n"
            << "rejected\t" << stats.rejected << "\n"
            << "cache_hit_rate\t" << stats.CacheHitRate() << "\n"
            << "morsels\t" << stats.bgp.morsels << "\n"
            << "updates_committed\t" << stats.updates_committed << "\n"
            << "store_version\t" << stats.store_version << "\n"
            << "triples_inserted\t" << stats.triples_inserted << "\n"
            << "triples_deleted\t" << stats.triples_deleted << "\n";
  return rc;
}

std::atomic<bool> g_shutdown_requested{false};

void RequestShutdown(int) { g_shutdown_requested.store(true); }

/// --serve mode: a SPARQL Protocol endpoint over the loaded database,
/// running until SIGINT/SIGTERM.
int RunServe(Database& db, const CliOptions& opts) {
  QueryService::Options sopts;
  sopts.num_threads = opts.concurrency;  // 0 = hardware threads
  sopts.enable_plan_cache = opts.plan_cache;
  sopts.enable_result_cache = opts.result_cache;
  sopts.enable_dedup = opts.result_cache;
  sopts.result_cache_bytes = opts.result_cache_mb << 20;
  sopts.intra_query_parallelism = opts.parallelism;
  sopts.slow_query_ms = opts.slow_query_ms;
  sopts.slow_query_sample = opts.slow_query_sample;
  if (opts.deadline_ms > 0)
    sopts.default_deadline = std::chrono::milliseconds(opts.deadline_ms);
  QueryService service(db, sopts);

  SparqlEndpoint::Options eopts;
  eopts.http.bind_address = opts.bind_address;
  eopts.http.port = static_cast<uint16_t>(opts.serve_port);
  SparqlEndpoint endpoint(service, db.dict(), eopts);
  Status status = endpoint.Start();
  if (!status.ok()) {
    std::cerr << "serve failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cerr << "# serving SPARQL on http://" << opts.bind_address << ":"
            << endpoint.port() << "/sparql (POST /update, GET /metrics, "
            << "GET /healthz); " << service.num_threads()
            << " workers; Ctrl-C stops\n";
  std::signal(SIGINT, RequestShutdown);
  std::signal(SIGTERM, RequestShutdown);
  while (!g_shutdown_requested.load(std::memory_order_relaxed))
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::cerr << "# shutting down\n";
  // Endpoint first (closes connections, unblocking any streaming worker),
  // then the service (drains in-flight queries).
  endpoint.Stop();
  service.Shutdown();
  // With all writers drained, make every acknowledged commit durable and
  // release the active segment before exiting.
  if (Wal* wal = db.wal()) {
    if (Status st = wal->Close(); !st.ok())
      std::cerr << "# wal close failed: " << st.ToString() << "\n";
    else
      std::cerr << "# wal flushed and closed\n";
  }
  ServiceStatsSnapshot stats = service.Stats();
  std::cerr << "# served " << stats.completed << " queries ("
            << stats.failed << " failed, " << stats.rejected
            << " rejected), p50 " << stats.p50_ms << " ms, p99 "
            << stats.p99_ms << " ms\n";
  return 0;
}

int RunQuery(Database& db, const CliOptions& opts, const std::string& text,
             ExecutorPool* pool, TraceSink* sink) {
  std::shared_ptr<TraceContext> trace;
  TraceContext::SpanId root = TraceContext::kNoSpan;
  if (opts.explain_analyze || sink->collect) {
    trace = std::make_shared<TraceContext>();
    root = trace->StartSpan("query");
  }
  auto finish_trace = [&](size_t rows, const Status& status) {
    if (trace == nullptr) return;
    trace->AddAttr(root, "rows", std::to_string(rows));
    trace->AddAttr(root, "status", status.ok() ? "ok" : status.ToString());
    trace->EndSpan(root);
    if (opts.explain_analyze) std::cerr << trace->RenderTree();
    sink->Add(std::move(trace));
  };
  Result<Query> parsed = [&] {
    ScopedSpan parse_span(trace.get(), "parse", root);
    return db.Parse(text);
  }();
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status().ToString() << "\n";
    finish_trace(0, parsed.status());
    return 1;
  }
  if (opts.explain) {
    BeTree original = BuildBeTree(*parsed);
    std::cerr << "--- original BE-tree (Count_BGP=" << original.CountBgp()
              << ", Depth=" << original.Depth() << ", well-designed="
              << (IsWellDesigned(*parsed) ? "yes" : "no") << ") ---\n"
              << DebugString(original, parsed->vars);
    ExecMetrics pm;
    BeTree planned = db.executor().Plan(*parsed, opts.exec, &pm);
    std::cerr << "--- planned BE-tree (merges=" << pm.transform.merges
              << ", injects=" << pm.transform.injects << ") ---\n"
              << DebugString(planned, parsed->vars)
              << "--- planned SPARQL ---\n"
              << SerializeToQuery(planned, parsed->vars) << "\n";
  }
  ExecMetrics metrics;
  Timer timer;
  CancelToken token(opts.deadline_ms > 0
                        ? CancelToken::Clock::now() +
                              std::chrono::milliseconds(opts.deadline_ms)
                        : CancelToken::Clock::time_point::max());
  ExecOptions exec = opts.exec;
  if (opts.deadline_ms > 0) exec.cancel = &token;
  exec.parallel.pool = pool;
  exec.parallel.parallelism = pool != nullptr ? opts.parallelism : 1;
  exec.trace = trace.get();
  exec.trace_parent = root;
  auto result = db.executor().Execute(*parsed, exec, &metrics);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    finish_trace(0, result.status());
    return 1;
  }
  finish_trace(result->size(), Status::OK());
  if (parsed->form == QueryForm::kAsk) {
    std::cout << (result->empty() ? "false" : "true") << "\n";
  } else {
    // CONSTRUCT results are triples; render them as N-Triples unless the
    // user asked for a bindings format explicitly.
    ResultFormat format = opts.format;
    if (parsed->form == QueryForm::kConstruct && !opts.format_set)
      format = ResultFormat::kNTriples;
    std::cout << FormatResults(*result, parsed->vars, db.dict(), format);
  }
  std::cerr << "# " << result->size() << " rows in " << timer.ElapsedMillis()
            << " ms (exec " << metrics.exec_ms << " ms, plan "
            << metrics.transform_ms << " ms, join space "
            << metrics.join_space << ", morsels " << metrics.bgp.morsels
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return Usage(argv[0]);

  Database db;
  Timer load_timer;
  if (!opts.data_file.empty()) {
    bool turtle = opts.data_file.size() > 4 &&
                  opts.data_file.rfind(".ttl") == opts.data_file.size() - 4;
    Status st = turtle ? db.LoadTurtleFile(opts.data_file)
                       : db.LoadNTriplesFile(opts.data_file);
    if (!st.ok()) {
      std::cerr << "load failed: " << st.ToString() << "\n";
      return 1;
    }
  } else if (!opts.snapshot_in.empty()) {
    SnapshotLoadInfo load_info;
    Status st = LoadSnapshot(opts.snapshot_in, &db, {}, &load_info);
    if (!st.ok()) {
      std::cerr << "snapshot load failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "# snapshot format v"
              << (load_info.format == SnapshotFormat::kV2 ? 2 : 1) << " ("
              << (load_info.mapped ? "mmap" : "buffered") << ", "
              << load_info.file_bytes << " bytes)\n";
  } else if (opts.lubm > 0) {
    LubmConfig cfg;
    cfg.universities = opts.lubm;
    GenerateLubm(cfg, &db);
  } else {
    DbpediaConfig cfg;
    cfg.articles = opts.dbpedia;
    GenerateDbpedia(cfg, &db);
  }
  // Intra-query pool for direct execution: N - 1 workers plus the calling
  // thread (0 = all hardware threads). Created before Finalize so index
  // construction — and each later commit's permutation merges — fan the
  // three CSR builds out over the same pool.
  std::unique_ptr<ExecutorPool> pool;
  if (opts.parallelism != 1)
    pool = std::make_unique<ExecutorPool>(
        opts.parallelism == 0 ? 0 : opts.parallelism - 1);

  db.Finalize(opts.engine, pool.get());
  std::cerr << "# " << db.size() << " triples ready in "
            << load_timer.ElapsedMillis() << " ms (engine "
            << db.engine().name() << ", mode " << opts.exec.Name() << ")\n";

  // Durable commits: attach the write-ahead log and replay whatever it
  // holds past the loaded snapshot before anything can observe the store.
  if (!opts.wal_dir.empty()) {
    Wal::Options wopts;
    Result<FsyncPolicy> policy = ParseFsyncPolicy(opts.fsync, &wopts.interval_ms);
    if (!policy.ok()) {
      std::cerr << "bad --fsync: " << policy.status().ToString() << "\n";
      return 1;
    }
    wopts.fsync = *policy;
    Result<WalRecoveryInfo> recovered = db.OpenWal(opts.wal_dir, wopts);
    if (!recovered.ok()) {
      std::cerr << "wal recovery failed: " << recovered.status().ToString()
                << "\n";
      return 1;
    }
    std::cerr << "# wal: " << opts.wal_dir << " (fsync " << opts.fsync
              << "), checkpoint v" << recovered->checkpoint_version
              << ", replayed " << recovered->records_replayed
              << " record(s) from " << recovered->segments_scanned
              << " segment(s)";
    if (recovered->torn_tail_truncated)
      std::cerr << ", truncated torn tail (" << recovered->truncated_bytes
                << " bytes)";
    std::cerr << "; store at v" << db.version() << " with " << db.size()
              << " triples\n";
  }

  // Apply update batches before snapshotting or serving queries: each
  // blank-line-separated block in the file commits as one version.
  if (!opts.update_file.empty()) {
    std::ifstream in(opts.update_file);
    if (!in.is_open()) {
      std::cerr << "cannot open " << opts.update_file << "\n";
      return 1;
    }
    for (const std::string& block : SplitBlocks(in)) {
      if (int rc = RunUpdate(db, block); rc != 0) return rc;
    }
  }

  // Saved after --update-file so the snapshot captures the committed
  // state (SaveSnapshot reads the current version).
  if (!opts.snapshot_out.empty()) {
    Status st = SaveSnapshot(db, opts.snapshot_out, opts.snapshot_format);
    if (!st.ok()) {
      std::cerr << "snapshot save failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "# snapshot written to " << opts.snapshot_out << " (format v"
              << (opts.snapshot_format == SnapshotFormat::kV2 ? 2 : 1)
              << ")\n";
  }

  if (opts.serve_port >= 0) {
    int rc = RunServe(db, opts);
    if (!opts.metrics_out.empty()) rc |= WriteMetricsFile(opts.metrics_out);
    return rc;
  }

  if (opts.stats_only) {
    const Statistics& st = db.stats();
    std::cout << "triples\t" << st.num_triples() << "\nentities\t"
              << st.num_entities() << "\npredicates\t" << st.num_predicates()
              << "\nliterals\t" << st.num_literals() << "\n";
    return 0;
  }

  // Collect the block batch: positional arg, query file, or stdin blocks
  // (skipped when --paper-queries supplies the batch). Blocks may mix
  // queries and INSERT DATA / DELETE DATA updates.
  std::vector<std::string> blocks;
  if (!opts.query_file.empty()) {
    std::ifstream in(opts.query_file);
    if (!in.is_open()) {
      std::cerr << "cannot open " << opts.query_file << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    blocks.push_back(buf.str());
  } else if (!opts.query.empty()) {
    blocks.push_back(opts.query);
  } else if (!opts.paper_queries) {
    blocks = SplitBlocks(std::cin);
  }
  if (opts.paper_queries)
    for (const PaperQuery& q : LubmPaperQueries()) blocks.push_back(q.sparql);
  if (blocks.empty()) return 0;

  TraceSink sink;
  sink.collect = !opts.trace_out.empty();

  int rc = 0;
  if (opts.concurrency > 0) {
    rc = RunService(db, opts, blocks, &sink);
  } else {
    for (size_t rep = 0; rep < opts.repeat; ++rep) {
      for (const std::string& block : blocks) {
        rc |= LooksLikeUpdate(block)
                  ? RunUpdate(db, block)
                  : RunQuery(db, opts, block, pool.get(), &sink);
      }
    }
  }
  if (!opts.trace_out.empty()) rc |= WriteTraceFile(opts.trace_out, sink.traces);
  if (!opts.metrics_out.empty()) rc |= WriteMetricsFile(opts.metrics_out);
  return rc;
}
