// sparqluo command-line shell.
//
// Usage:
//   sparqluo_cli --data FILE.nt [options] [QUERY | --query-file FILE]
//   sparqluo_cli --lubm N  [options] ...       (generate LUBM with N univs)
//   sparqluo_cli --dbpedia N [options] ...     (generate N-article DBpedia)
//   sparqluo_cli --snapshot FILE.bin ...       (reload a binary snapshot)
//   ... --save-snapshot FILE.bin               (persist the loaded data)
//
// Options:
//   --engine wco|hashjoin     BGP engine (default wco)
//   --mode base|tt|cp|full    optimization level (default full)
//   --format tsv|csv|json     output format (default tsv)
//   --explain                 print the BE-tree before/after transformation
//   --stats                   print dataset statistics and exit
//   --max-rows N              abort when an intermediate exceeds N rows
//   --parallelism N           intra-query parallelism: evaluate each BGP
//                             with up to N workers via morsel-driven
//                             execution (0 = all hardware threads; results
//                             are bit-identical to sequential execution)
//   --concurrency N           serve the query batch through a QueryService
//                             with N worker threads (enables batch serving)
//   --repeat K                submit each query K times (batch serving)
//   --deadline-ms N           per-query deadline in milliseconds
//   --no-plan-cache           disable the shared plan cache (batch serving)
//
// Without a query argument, reads queries from stdin (one per blank-line-
// separated block; end with EOF). With --concurrency N, all queries are
// collected first, submitted to the service, and a per-query status line
// plus aggregate service stats (QPS, p50/p99, cache hit rate) are printed
// instead of result rows.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "betree/builder.h"
#include "betree/serializer.h"
#include "engine/database.h"
#include "engine/result_writer.h"
#include "engine/snapshot.h"
#include "optimizer/transformer.h"
#include "optimizer/well_designed.h"
#include "server/query_service.h"
#include "util/timer.h"
#include "workload/dbpedia_generator.h"
#include "workload/lubm_generator.h"

namespace {

using namespace sparqluo;

struct CliOptions {
  std::string data_file;
  std::string snapshot_in;
  std::string snapshot_out;
  size_t lubm = 0;
  size_t dbpedia = 0;
  EngineKind engine = EngineKind::kWco;
  ExecOptions exec = ExecOptions::Full();
  ResultFormat format = ResultFormat::kTsv;
  bool explain = false;
  bool stats_only = false;
  size_t concurrency = 0;  ///< > 0 switches to batch serving.
  size_t parallelism = 1;  ///< Intra-query workers; 0 = hardware threads.
  size_t repeat = 1;
  long deadline_ms = 0;
  bool plan_cache = true;
  std::string query;
  std::string query_file;
};

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--data FILE.nt | --lubm N | --dbpedia N) [--engine "
               "wco|hashjoin] [--mode base|tt|cp|full] [--format "
               "tsv|csv|json] [--explain] [--stats] [--max-rows N] "
               "[--parallelism N] [--concurrency N] [--repeat K] "
               "[--deadline-ms N] [--no-plan-cache] [QUERY]\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (!v) return false;
      opts->data_file = v;
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (!v) return false;
      opts->snapshot_in = v;
    } else if (arg == "--save-snapshot") {
      const char* v = next();
      if (!v) return false;
      opts->snapshot_out = v;
    } else if (arg == "--lubm") {
      const char* v = next();
      if (!v) return false;
      opts->lubm = static_cast<size_t>(std::atol(v));
    } else if (arg == "--dbpedia") {
      const char* v = next();
      if (!v) return false;
      opts->dbpedia = static_cast<size_t>(std::atol(v));
    } else if (arg == "--engine") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "wco") == 0) {
        opts->engine = EngineKind::kWco;
      } else if (std::strcmp(v, "hashjoin") == 0) {
        opts->engine = EngineKind::kHashJoin;
      } else {
        return false;
      }
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "base") == 0) opts->exec = ExecOptions::Base();
      else if (std::strcmp(v, "tt") == 0) opts->exec = ExecOptions::TT();
      else if (std::strcmp(v, "cp") == 0) opts->exec = ExecOptions::CP();
      else if (std::strcmp(v, "full") == 0) opts->exec = ExecOptions::Full();
      else return false;
    } else if (arg == "--format") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "tsv") == 0) opts->format = ResultFormat::kTsv;
      else if (std::strcmp(v, "csv") == 0) opts->format = ResultFormat::kCsv;
      else if (std::strcmp(v, "json") == 0) opts->format = ResultFormat::kJson;
      else return false;
    } else if (arg == "--explain") {
      opts->explain = true;
    } else if (arg == "--stats") {
      opts->stats_only = true;
    } else if (arg == "--max-rows") {
      const char* v = next();
      if (!v) return false;
      opts->exec.max_intermediate_rows = static_cast<size_t>(std::atol(v));
    } else if (arg == "--parallelism") {
      const char* v = next();
      if (!v) return false;
      opts->parallelism = static_cast<size_t>(std::atol(v));
    } else if (arg == "--concurrency") {
      const char* v = next();
      if (!v) return false;
      opts->concurrency = static_cast<size_t>(std::atol(v));
    } else if (arg == "--repeat") {
      const char* v = next();
      if (!v) return false;
      opts->repeat = static_cast<size_t>(std::atol(v));
      if (opts->repeat == 0) opts->repeat = 1;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return false;
      opts->deadline_ms = std::atol(v);
    } else if (arg == "--no-plan-cache") {
      opts->plan_cache = false;
    } else if (arg == "--query-file") {
      const char* v = next();
      if (!v) return false;
      opts->query_file = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return false;
    } else {
      opts->query = arg;
    }
  }
  return !opts->data_file.empty() || !opts->snapshot_in.empty() ||
         opts->lubm > 0 || opts->dbpedia > 0;
}

/// Batch serving: submits every collected query (x repeat) to a
/// QueryService and reports per-query outcomes plus aggregate stats.
int RunService(Database& db, const CliOptions& opts,
               const std::vector<std::string>& queries) {
  QueryService::Options sopts;
  sopts.num_threads = opts.concurrency;
  sopts.enable_plan_cache = opts.plan_cache;
  sopts.intra_query_parallelism = opts.parallelism;
  // RunBatch submits the whole batch up front; size the admission queue to
  // hold it so a big --repeat doesn't trip the overload rejection meant for
  // live traffic.
  sopts.max_queue = std::max<size_t>(sopts.max_queue,
                                     queries.size() * opts.repeat + 16);
  if (opts.deadline_ms > 0)
    sopts.default_deadline = std::chrono::milliseconds(opts.deadline_ms);
  QueryService service(db, sopts);
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size() * opts.repeat);
  for (size_t rep = 0; rep < opts.repeat; ++rep) {
    for (const std::string& q : queries) {
      QueryRequest req;
      req.text = q;
      req.options = opts.exec;
      requests.push_back(std::move(req));
    }
  }
  Timer timer;
  std::vector<QueryResponse> responses = service.RunBatch(std::move(requests));
  double wall_ms = timer.ElapsedMillis();

  int rc = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const QueryResponse& r = responses[i];
    std::cerr << "# q" << (i % queries.size()) + 1 << " rep "
              << i / queries.size() + 1 << ": ";
    if (r.status.ok()) {
      std::cerr << r.rows.size() << " rows in " << r.total_ms << " ms"
                << (r.plan_cache_hit ? " (plan cache hit)" : "") << "\n";
    } else {
      std::cerr << r.status.ToString() << "\n";
      rc = 1;
    }
  }
  ServiceStatsSnapshot stats = service.Stats();
  std::cout << "queries\t" << responses.size() << "\n"
            << "threads\t" << service.num_threads() << "\n"
            << "wall_ms\t" << wall_ms << "\n"
            << "qps\t" << (wall_ms > 0.0 ? 1000.0 * responses.size() / wall_ms
                                         : 0.0)
            << "\n"
            << "p50_ms\t" << stats.p50_ms << "\n"
            << "p99_ms\t" << stats.p99_ms << "\n"
            << "completed\t" << stats.completed << "\n"
            << "failed\t" << stats.failed << "\n"
            << "aborted_deadline\t" << stats.aborted_deadline << "\n"
            << "aborted_row_limit\t" << stats.aborted_row_limit << "\n"
            << "rejected\t" << stats.rejected << "\n"
            << "cache_hit_rate\t" << stats.CacheHitRate() << "\n"
            << "morsels\t" << stats.bgp.morsels << "\n";
  return rc;
}

int RunQuery(Database& db, const CliOptions& opts, const std::string& text,
             ExecutorPool* pool) {
  auto parsed = db.Parse(text);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status().ToString() << "\n";
    return 1;
  }
  if (opts.explain) {
    BeTree original = BuildBeTree(*parsed);
    std::cerr << "--- original BE-tree (Count_BGP=" << original.CountBgp()
              << ", Depth=" << original.Depth() << ", well-designed="
              << (IsWellDesigned(*parsed) ? "yes" : "no") << ") ---\n"
              << DebugString(original, parsed->vars);
    ExecMetrics pm;
    BeTree planned = db.executor().Plan(*parsed, opts.exec, &pm);
    std::cerr << "--- planned BE-tree (merges=" << pm.transform.merges
              << ", injects=" << pm.transform.injects << ") ---\n"
              << DebugString(planned, parsed->vars)
              << "--- planned SPARQL ---\n"
              << SerializeToQuery(planned, parsed->vars) << "\n";
  }
  ExecMetrics metrics;
  Timer timer;
  CancelToken token(opts.deadline_ms > 0
                        ? CancelToken::Clock::now() +
                              std::chrono::milliseconds(opts.deadline_ms)
                        : CancelToken::Clock::time_point::max());
  ExecOptions exec = opts.exec;
  if (opts.deadline_ms > 0) exec.cancel = &token;
  exec.parallel.pool = pool;
  exec.parallel.parallelism = pool != nullptr ? opts.parallelism : 1;
  auto result = db.executor().Execute(*parsed, exec, &metrics);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }
  if (parsed->form == QueryForm::kAsk) {
    std::cout << (result->empty() ? "false" : "true") << "\n";
  } else {
    std::cout << FormatResults(*result, parsed->vars, db.dict(), opts.format);
  }
  std::cerr << "# " << result->size() << " rows in " << timer.ElapsedMillis()
            << " ms (exec " << metrics.exec_ms << " ms, plan "
            << metrics.transform_ms << " ms, join space "
            << metrics.join_space << ", morsels " << metrics.bgp.morsels
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return Usage(argv[0]);

  Database db;
  Timer load_timer;
  if (!opts.data_file.empty()) {
    bool turtle = opts.data_file.size() > 4 &&
                  opts.data_file.rfind(".ttl") == opts.data_file.size() - 4;
    Status st = turtle ? db.LoadTurtleFile(opts.data_file)
                       : db.LoadNTriplesFile(opts.data_file);
    if (!st.ok()) {
      std::cerr << "load failed: " << st.ToString() << "\n";
      return 1;
    }
  } else if (!opts.snapshot_in.empty()) {
    Status st = LoadSnapshot(opts.snapshot_in, &db);
    if (!st.ok()) {
      std::cerr << "snapshot load failed: " << st.ToString() << "\n";
      return 1;
    }
  } else if (opts.lubm > 0) {
    LubmConfig cfg;
    cfg.universities = opts.lubm;
    GenerateLubm(cfg, &db);
  } else {
    DbpediaConfig cfg;
    cfg.articles = opts.dbpedia;
    GenerateDbpedia(cfg, &db);
  }
  db.Finalize(opts.engine);
  std::cerr << "# " << db.size() << " triples ready in "
            << load_timer.ElapsedMillis() << " ms (engine "
            << db.engine().name() << ", mode " << opts.exec.Name() << ")\n";

  if (!opts.snapshot_out.empty()) {
    Status st = SaveSnapshot(db, opts.snapshot_out);
    if (!st.ok()) {
      std::cerr << "snapshot save failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "# snapshot written to " << opts.snapshot_out << "\n";
  }

  if (opts.stats_only) {
    const Statistics& st = db.stats();
    std::cout << "triples\t" << st.num_triples() << "\nentities\t"
              << st.num_entities() << "\npredicates\t" << st.num_predicates()
              << "\nliterals\t" << st.num_literals() << "\n";
    return 0;
  }

  // Collect the query batch: positional arg, query file, or stdin blocks.
  std::vector<std::string> queries;
  if (!opts.query_file.empty()) {
    std::ifstream in(opts.query_file);
    if (!in.is_open()) {
      std::cerr << "cannot open " << opts.query_file << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    queries.push_back(buf.str());
  } else if (!opts.query.empty()) {
    queries.push_back(opts.query);
  } else {
    // Interactive/batch: blocks separated by blank lines on stdin.
    std::string block, line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) {
        if (!block.empty()) queries.push_back(block);
        block.clear();
        continue;
      }
      block += line + "\n";
    }
    if (!block.empty()) queries.push_back(block);
  }
  if (queries.empty()) return 0;

  if (opts.concurrency > 0) return RunService(db, opts, queries);

  // Intra-query pool for direct execution: N - 1 workers plus the calling
  // thread (0 = all hardware threads).
  std::unique_ptr<ExecutorPool> pool;
  if (opts.parallelism != 1)
    pool = std::make_unique<ExecutorPool>(
        opts.parallelism == 0 ? 0 : opts.parallelism - 1);

  int rc = 0;
  for (size_t rep = 0; rep < opts.repeat; ++rep)
    for (const std::string& q : queries) rc |= RunQuery(db, opts, q, pool.get());
  return rc;
}
