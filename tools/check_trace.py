#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace-out.

Checks:

1. The file parses as JSON with a `traceEvents` array of complete
   events (`"ph": "X"`) carrying name/ts/dur/pid/tid.
2. Per pid (one pid per traced query): exactly one root `query` span,
   and the expected lifecycle phases underneath it — `eval` and
   `serialize` always; `parse` and `plan` whenever the query was not a
   plan-cache hit (root carries a `cache_hit` arg written by the
   engine).
3. Containment — every event nests inside the query span of its pid
   (start >= query start, end <= query end, small clock slop allowed).

Usage: tools/check_trace.py TRACE_FILE [--min-queries N]
Exit status: 0 = valid, 1 = validation errors (all printed).
"""
import json
import sys

SLOP_US = 5  # steady_clock reads on different threads; keep a tiny margin


def main():
    args = sys.argv[1:]
    min_queries = 1
    if "--min-queries" in args:
        i = args.index("--min-queries")
        min_queries = int(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = args[0]

    errors = []
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            print(f"{path}: not valid JSON: {e}", file=sys.stderr)
            return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"{path}: missing traceEvents array", file=sys.stderr)
        return 1

    by_pid = {}
    for idx, ev in enumerate(events):
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in ev:
                errors.append(f"{path}: event {idx} missing {key!r}")
                break
        else:
            if ev["ph"] != "X":
                errors.append(
                    f"{path}: event {idx} has ph={ev['ph']!r}, expected 'X'")
                continue
            by_pid.setdefault(ev["pid"], []).append(ev)

    if len(by_pid) < min_queries:
        errors.append(
            f"{path}: {len(by_pid)} traced queries, expected >= {min_queries}")

    for pid, evs in sorted(by_pid.items()):
        roots = [e for e in evs if e["name"] == "query"]
        if len(roots) != 1:
            errors.append(f"{path}: pid {pid}: {len(roots)} 'query' spans, "
                          f"expected exactly 1")
            continue
        root = roots[0]
        names = {e["name"] for e in evs}
        cache_hit = str(root.get("args", {}).get("cache_hit", "")) == "true"
        required = {"eval", "serialize", "queue_wait"}
        if not cache_hit:
            required |= {"parse", "plan"}
        missing = required - names
        if missing:
            errors.append(
                f"{path}: pid {pid}: missing phase spans {sorted(missing)} "
                f"(cache_hit={cache_hit}, have {sorted(names)})")
        q_start, q_end = root["ts"], root["ts"] + root["dur"]
        for e in evs:
            if e is root:
                continue
            if (e["ts"] < q_start - SLOP_US or
                    e["ts"] + e["dur"] > q_end + SLOP_US):
                errors.append(
                    f"{path}: pid {pid}: span {e['name']!r} "
                    f"[{e['ts']}, {e['ts'] + e['dur']}] escapes query span "
                    f"[{q_start}, {q_end}]")

    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        print(f"{path}: OK ({len(by_pid)} queries, {len(events)} spans)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
