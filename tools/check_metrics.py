#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file produced by --metrics-out.

Checks, in order:

1. Syntax — every line is a comment (# HELP / # TYPE) or a sample line
   `name{labels} value`; label strings are well-formed (quoted values,
   no stray braces); values parse as numbers.
2. Metadata — every sample's family has a preceding # TYPE (and # HELP)
   line, the declared type is counter/gauge/histogram, and histogram
   families only emit `_bucket` / `_sum` / `_count` samples.
3. Histogram invariants — per (family, non-le labels) series: bucket
   `le` bounds strictly increase, cumulative counts are non-decreasing,
   an `le="+Inf"` bucket exists and equals the `_count` sample.
4. Coverage — metric families the instrumented engine must always
   export (see REQUIRED) are present with at least one sample.

Usage: tools/check_metrics.py METRICS_FILE [--require NAME:TYPE ...]
Each --require adds a family to the coverage check (e.g.
--require sparqluo_http_requests_total:counter, as the http-smoke CI job
does for the endpoint's request metrics).
Exit status: 0 = valid, 1 = validation errors (all printed).
"""
import re
import sys

# Families the engine exports unconditionally after serving any workload.
REQUIRED = [
    ("sparqluo_queries_submitted_total", "counter"),
    ("sparqluo_queries_completed_total", "counter"),
    ("sparqluo_query_rows_total", "counter"),
    ("sparqluo_query_latency_ms", "histogram"),
    ("sparqluo_plan_cache_hits_total", "counter"),
    ("sparqluo_plan_cache_misses_total", "counter"),
    ("sparqluo_executor_tasks_total", "counter"),
    ("sparqluo_executor_queue_depth", "gauge"),
    ("sparqluo_dictionary_terms_total", "counter"),
]

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'       # metric name
    r'(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?\s*)*)\})?'
    r'\s+(-?(?:[0-9.eE+-]+|Inf|NaN))\s*$')
LE_RE = re.compile(r'le="([^"]*)"')


def parse_value(text):
    if text == "Inf" or text == "+Inf":
        return float("inf")
    return float(text)


def main():
    args = sys.argv[1:]
    required = list(REQUIRED)
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--require":
            if i + 1 >= len(args) or ":" not in args[i + 1]:
                print("--require needs NAME:TYPE", file=sys.stderr)
                return 2
            name, typ = args[i + 1].rsplit(":", 1)
            if typ not in ("counter", "gauge", "histogram"):
                print(f"--require: bad type {typ!r}", file=sys.stderr)
                return 2
            required.append((name, typ))
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = paths[0]
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    errors = []
    types = {}    # family name -> declared type
    helps = set()
    samples = {}  # family name -> list of (labels_str, value)

    def base_family(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                if types[name[: -len(suffix)]] == "histogram":
                    return name[: -len(suffix)]
        return name

    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                errors.append(f"{path}:{i}: malformed HELP line")
            else:
                helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                errors.append(f"{path}:{i}: malformed TYPE line: {line!r}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{path}:{i}: unparseable sample line: {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            parse_value(value)
        except ValueError:
            errors.append(f"{path}:{i}: bad value {value!r}")
            continue
        family = base_family(name)
        if family not in types:
            errors.append(f"{path}:{i}: sample {name!r} has no # TYPE line")
            continue
        if types[family] == "histogram":
            suffix = name[len(family):]
            if suffix not in ("_bucket", "_sum", "_count"):
                errors.append(
                    f"{path}:{i}: histogram family {family!r} emits "
                    f"non-histogram sample {name!r}")
        samples.setdefault(family, []).append((name, labels, value))

    for family in types:
        if family not in helps:
            errors.append(f"{path}: family {family!r} has # TYPE but no # HELP")

    # Histogram series invariants.
    for family, typ in types.items():
        if typ != "histogram":
            continue
        series = {}  # non-le label string -> [(le, cum_count)]
        counts = {}  # non-le label string -> _count value
        for name, labels, value in samples.get(family, []):
            rest = LE_RE.sub("", labels).strip(", ")
            if name.endswith("_bucket"):
                le = LE_RE.search(labels)
                if not le:
                    errors.append(
                        f"{path}: {family}_bucket sample without le label")
                    continue
                series.setdefault(rest, []).append(
                    (parse_value(le.group(1)), parse_value(value)))
            elif name.endswith("_count"):
                counts[rest] = parse_value(value)
        for rest, buckets in series.items():
            prev_le, prev_count = None, -1.0
            for le, cum in buckets:  # file order == ascending bound order
                if prev_le is not None and le <= prev_le:
                    errors.append(
                        f"{path}: {family}{{{rest}}} bucket bounds not "
                        f"increasing ({prev_le} then {le})")
                if cum < prev_count:
                    errors.append(
                        f"{path}: {family}{{{rest}}} cumulative counts "
                        f"decrease ({prev_count} then {cum})")
                prev_le, prev_count = le, cum
            if not buckets or buckets[-1][0] != float("inf"):
                errors.append(f"{path}: {family}{{{rest}}} missing +Inf bucket")
            elif rest in counts and buckets[-1][1] != counts[rest]:
                errors.append(
                    f"{path}: {family}{{{rest}}} +Inf bucket "
                    f"{buckets[-1][1]} != _count {counts[rest]}")

    for family, typ in required:
        if family not in types:
            errors.append(f"{path}: required family {family!r} missing")
        elif types[family] != typ:
            errors.append(
                f"{path}: family {family!r} is {types[family]}, expected "
                f"{typ}")
        elif not samples.get(family):
            errors.append(f"{path}: required family {family!r} has no samples")

    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        n = sum(len(v) for v in samples.values())
        print(f"{path}: OK ({len(types)} families, {n} samples)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
