#!/usr/bin/env python3
"""Docs lint: fail on broken relative links in Markdown files.

Scans every *.md under the repository (skipping build/ and hidden
directories), extracts inline links and images ([text](target)), and
verifies that each relative target resolves to an existing file or
directory. External links (scheme://, mailto:) and pure in-page anchors
(#...) are ignored; an #anchor suffix on a relative link is stripped
before the existence check.

Usage: tools/docs_lint.py [ROOT]       (default ROOT: repo root)
Exit status: 0 = clean, 1 = broken links found.
"""
import os
import re
import sys

# Inline link/image: [text](target) — target may not contain spaces or
# closing parens (none of ours do); reference-style links are not used in
# this repo.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {"build", ".git", ".github"}


def is_external(target: str) -> bool:
    return "://" in target or target.startswith(("mailto:", "#"))


def lint(root: str) -> int:
    broken = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith(".")]
        for name in filenames:
            if not name.endswith(".md"):
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            # Fenced code blocks frequently contain [x](y)-shaped text that
            # is not a link; drop them before matching.
            text = re.sub(r"```.*?```", "", text, flags=re.S)
            for match in LINK_RE.finditer(text):
                target = match.group(1)
                if is_external(target):
                    continue
                resolved = os.path.normpath(
                    os.path.join(dirpath, target.split("#", 1)[0]))
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    broken.append(f"{rel}: broken link -> {target}")
    for line in broken:
        print(line, file=sys.stderr)
    if broken:
        print(f"docs lint: {len(broken)} broken link(s)", file=sys.stderr)
        return 1
    print("docs lint: all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(lint(sys.argv[1] if len(sys.argv) > 1 else
                  os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
