#!/usr/bin/env python3
"""Docs lint: fail on broken relative links and stale path references.

Two checks:

1. Relative links — scans every *.md under the repository (skipping
   build/ and hidden directories), extracts inline links and images
   ([text](target)), and verifies that each relative target resolves to
   an existing file or directory. External links (scheme://, mailto:)
   and pure in-page anchors (#...) are ignored; an #anchor suffix on a
   relative link is stripped before the existence check.

2. Backtick path references — inside docs/*.md only, every inline code
   span that *looks like* a repo path (starts with a known top-level
   source directory and contains a '/') must exist in the tree. Docs rot
   silently when code moves; this turns a renamed file into a CI
   failure. Supports `{a,b}` brace alternation (`foo.{h,cc}`), `*`
   globs, a trailing `:LINE` reference, and directory references with or
   without a trailing '/'.

Usage: tools/docs_lint.py [ROOT]       (default ROOT: repo root)
Exit status: 0 = clean, 1 = broken references found.
"""
import glob
import os
import re
import sys

# Inline link/image: [text](target) — target may not contain spaces or
# closing parens (none of ours do); reference-style links are not used in
# this repo.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
# Inline code span (single backticks; docs here don't use double-backtick
# spans).
CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
SKIP_DIRS = {"build", ".git", ".github"}

# A code span is treated as a repo path reference iff its first component
# is one of these. Anything else (command lines, type names, generated
# build/ paths) is ignored.
PATH_PREFIXES = ("src/", "docs/", "tools/", "tests/", "bench/", "examples/")
PATH_TOKEN_RE = re.compile(r"^[A-Za-z0-9_.{},*/-]+$")


def is_external(target: str) -> bool:
    return "://" in target or target.startswith(("mailto:", "#"))


def expand_braces(token: str):
    """Expands one level of {a,b} alternation (enough for foo.{h,cc})."""
    match = re.search(r"\{([^{}]*)\}", token)
    if not match:
        return [token]
    head, tail = token[:match.start()], token[match.end():]
    out = []
    for alt in match.group(1).split(","):
        out.extend(expand_braces(head + alt + tail))
    return out


def path_reference_broken(root: str, token: str) -> bool:
    """True when a path-shaped code span matches nothing in the tree."""
    token = re.sub(r":\d+(-\d+)?$", "", token)  # strip :LINE / :LO-HI
    for candidate in expand_braces(token):
        candidate = candidate.rstrip("/")
        resolved = os.path.join(root, candidate)
        if "*" in candidate:
            if not glob.glob(resolved):
                return True
        elif not os.path.exists(resolved):
            return True
    return False


def lint(root: str) -> int:
    broken = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith(".")]
        for name in filenames:
            if not name.endswith(".md"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            # Fenced code blocks frequently contain [x](y)-shaped text that
            # is not a link; drop them before matching.
            text = re.sub(r"```.*?```", "", text, flags=re.S)
            for match in LINK_RE.finditer(text):
                target = match.group(1)
                if is_external(target):
                    continue
                resolved = os.path.normpath(
                    os.path.join(dirpath, target.split("#", 1)[0]))
                if not os.path.exists(resolved):
                    broken.append(f"{rel}: broken link -> {target}")
            # Backtick path references: docs/*.md only — that's where
            # path-heavy prose lives; READMEs mix in too many shell lines.
            if os.path.dirname(rel) != "docs":
                continue
            for match in CODE_SPAN_RE.finditer(text):
                token = match.group(1).strip()
                if not token.startswith(PATH_PREFIXES):
                    continue
                if "/" not in token or not PATH_TOKEN_RE.match(token):
                    continue
                if path_reference_broken(root, token):
                    broken.append(f"{rel}: stale path reference -> `{token}`")
    for line in broken:
        print(line, file=sys.stderr)
    if broken:
        print(f"docs lint: {len(broken)} broken reference(s)", file=sys.stderr)
        return 1
    print("docs lint: all relative links and path references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(lint(sys.argv[1] if len(sys.argv) > 1 else
                  os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
